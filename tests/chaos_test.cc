// Chaos suite: deterministic fault injection against the full Mantle stack.
//
// Every scenario drives real client operations through a hostile fabric -
// probabilistic RPC drops, latency spikes, crashed and paused servers, named
// partitions - and asserts the robustness contract:
//   * no operation hangs: everything resolves to ok / retriable / kTimeout /
//     kUnavailable within its deadline budget;
//   * reported successes are durable (an ok mkdir stats ok after healing);
//   * the index never references metadata TafDB does not hold (garbage rows
//     from ambiguous timeouts are tolerated, phantom directories are not);
//   * the same fault seed replays the same fault decisions.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/path.h"
#include "src/net/fault_injector.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// Registry scrape helper: counters are process-global and tests share the
// process, so every assertion is a before/after delta.
uint64_t MetricValue(const char* name) {
  return obs::Metrics::Instance().CounterValue(name);
}

// Wall-clock ceiling for a single op in the assertions below. Far above every
// configured budget: a breach means an op escaped its deadline, not jitter.
constexpr int64_t kOpWallCeilingNanos = 8'000'000'000;

MantleOptions ChaosMantleOptions() {
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 2'000'000'000;  // 2 s per op
  options.index.raft.election_timeout_min_nanos = 60'000'000;
  options.index.raft.election_timeout_max_nanos = 120'000'000;
  options.index.raft.election_poll_nanos = 5'000'000;
  return options;
}

bool IsCleanChaosCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kAborted:
    case StatusCode::kBusy:
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
    case StatusCode::kOverloaded:  // tagged retry exhaustion / admission shed
      return true;
    default:
      return false;
  }
}

// The safety half of Fsck: the index must never reference directories TafDB
// does not hold. Unindexed TafDB rows are expected garbage after ambiguous
// timeouts (commit decided, ack lost) and are excluded on purpose.
void ExpectNoPhantomDirs(MantleService& service) {
  auto report = service.Fsck();
  EXPECT_TRUE(report.missing_entry_row.empty())
      << "indexed dir without entry row: " << report.missing_entry_row.front();
  EXPECT_TRUE(report.id_mismatch.empty()) << report.id_mismatch.front();
  EXPECT_TRUE(report.missing_attr_row.empty()) << report.missing_attr_row.front();
}

// --- determinism -------------------------------------------------------------

TEST(ChaosTest, FaultDecisionsAreDeterministicPerLink) {
  FaultRule rule;
  rule.drop_probability = 0.2;
  rule.delay_probability = 0.15;
  rule.delay_nanos = 1'000;
  rule.delay_jitter_nanos = 500;

  auto record = [&rule](uint64_t seed) {
    FaultInjector injector(seed);
    injector.SetRule("tafdb-0", rule);
    std::vector<int64_t> decisions;
    for (int i = 0; i < 300; ++i) {
      auto verdict = injector.Preflight("client", "tafdb-0");
      decisions.push_back(!verdict.status.ok() ? -1 : verdict.extra_delay_nanos);
    }
    return decisions;
  };

  const auto base = record(42);
  EXPECT_EQ(base, record(42));
  EXPECT_NE(base, record(43));  // 2^-300 false-failure odds

  // Unrelated traffic on other links (heartbeats, other shards) must not
  // perturb this link's sequence - the core replayability guarantee.
  FaultInjector interleaved(42);
  interleaved.SetRule("tafdb-0", rule);
  interleaved.SetRule("tafdb-1", rule);
  std::vector<int64_t> decisions;
  for (int i = 0; i < 300; ++i) {
    interleaved.Preflight("raft-3", "tafdb-1");
    interleaved.Preflight("client", "tafdb-1");
    auto verdict = interleaved.Preflight("client", "tafdb-0");
    decisions.push_back(!verdict.status.ok() ? -1 : verdict.extra_delay_nanos);
  }
  EXPECT_EQ(base, decisions);
}

TEST(ChaosTest, SameSeedReplaysSameClientOutcomes) {
  // End-to-end determinism: a single-threaded client against a dropping
  // TafDB fleet sees the identical status sequence under the same seed.
  auto run = [](uint64_t seed) {
    NetworkOptions net = FastNetworkOptions();
    net.fault_seed = seed;
    Network network(net);
    MantleOptions options = ChaosMantleOptions();
    options.index.raft.enable_election_timer = false;  // no timer randomness
    MantleService service(&network, options);
    EXPECT_TRUE(service.Mkdir("/det").ok());

    FaultRule drop;
    drop.drop_probability = 0.25;
    network.faults().SetRule("tafdb", drop);

    std::vector<StatusCode> codes;
    for (int i = 0; i < 50; ++i) {
      const std::string dir = "/det/d" + std::to_string(i);
      codes.push_back(service.Mkdir(dir).status.code());
      codes.push_back(service.StatDir(dir).status.code());
    }
    network.faults().ClearAll();
    return codes;
  };

  const auto first = run(0xc0ffee);
  EXPECT_EQ(first, run(0xc0ffee));
}

// --- probabilistic drops ----------------------------------------------------

TEST(ChaosTest, FivePercentDropsResolveCleanlyAndSuccessesAreDurable) {
  Network network(FastNetworkOptions());
  MantleService service(&network, ChaosMantleOptions());
  ASSERT_TRUE(service.Mkdir("/base").ok());
  const uint64_t drops_before = MetricValue("net.fault.drops");

  FaultRule drop;
  drop.drop_probability = 0.05;
  network.faults().SetRule("tafdb", drop);
  network.faults().SetRule("ns-index", drop);

  std::vector<std::string> created;
  std::mutex created_mu;
  std::atomic<int> dirty_codes{0};
  std::atomic<int> over_budget{0};
  auto worker = [&](int t) {
    for (int i = 0; i < 120; ++i) {
      const std::string dir =
          "/base/t" + std::to_string(t) + "_" + std::to_string(i);
      Stopwatch timer;
      OpResult mk = service.Mkdir(dir);
      if (timer.ElapsedNanos() > kOpWallCeilingNanos) {
        over_budget.fetch_add(1);
      }
      if (!IsCleanChaosCode(mk.status.code())) {
        dirty_codes.fetch_add(1);
      }
      if (mk.ok()) {
        std::lock_guard<std::mutex> lock(created_mu);
        created.push_back(dir);
      }
      timer.Reset();
      OpResult stat = service.StatDir(dir);
      if (timer.ElapsedNanos() > kOpWallCeilingNanos) {
        over_budget.fetch_add(1);
      }
      if (!IsCleanChaosCode(stat.status.code())) {
        dirty_codes.fetch_add(1);
      }
    }
  };
  std::thread a(worker, 0), b(worker, 1);
  a.join();
  b.join();

  EXPECT_EQ(dirty_codes.load(), 0);
  EXPECT_EQ(over_budget.load(), 0);
  EXPECT_GT(network.fault_stats().rpcs_dropped.load(), 0u);
  // The injector's drops are mirrored into the process-wide metrics registry.
  EXPECT_GE(MetricValue("net.fault.drops") - drops_before,
            network.fault_stats().rpcs_dropped.load());

  network.faults().ClearAll();
  // Healed fabric: every reported success is fully there.
  for (const auto& dir : created) {
    EXPECT_TRUE(service.StatDir(dir).ok()) << dir;
  }
  EXPECT_GT(created.size(), 0u);
  ExpectNoPhantomDirs(service);
}

// --- crashes ----------------------------------------------------------------

TEST(ChaosTest, FollowerCrashMidTrafficDegradesReadsGracefully) {
  Network network(FastNetworkOptions());
  MantleOptions options = ChaosMantleOptions();
  options.index.follower_read = true;
  options.index.offload_queue_threshold = 0;  // hit replicas aggressively
  MantleService service(&network, options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.Mkdir("/c" + std::to_string(i)).ok());
  }

  const uint64_t crash_rejected_before = MetricValue("net.fault.crash_rejected");
  RaftGroup* group = service.index()->group();
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  uint32_t victim = leader->id() == 0 ? 1 : 0;
  // Fabric-level crash (connection refused), not a clean node stop: the read
  // scheduler still routes to the victim and must fall back on kUnavailable.
  network.faults().CrashServer("ns-index-" + std::to_string(victim));

  int failures = 0;
  for (int round = 0; round < 60; ++round) {
    Stopwatch timer;
    if (!service.StatDir("/c" + std::to_string(round % 8)).ok()) {
      ++failures;
    }
    EXPECT_LT(timer.ElapsedNanos(), kOpWallCeilingNanos);
  }
  EXPECT_EQ(failures, 0);
  EXPECT_GT(service.index()->degraded_reads(), 0u);
  EXPECT_GT(network.fault_stats().rpcs_crash_rejected.load(), 0u);
  EXPECT_GT(MetricValue("net.fault.crash_rejected"), crash_rejected_before);
  EXPECT_GT(MetricValue("index.read.degraded"), 0u);

  // Writes survive too (the crashed replica is a follower).
  EXPECT_TRUE(service.Mkdir("/after-crash").ok());

  network.faults().RestartServer("ns-index-" + std::to_string(victim));
  EXPECT_TRUE(service.StatDir("/after-crash").ok());
  ExpectNoPhantomDirs(service);
}

// --- partitions -------------------------------------------------------------

TEST(ChaosTest, LeaderPartitionElectsNewLeaderAndOldLeaderStepsDown) {
  Network network(FastNetworkOptions());
  MantleOptions options = ChaosMantleOptions();
  options.op_deadline_nanos = 10'000'000'000;  // elections take ~100 ms; be safe
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/pre").ok());

  RaftGroup* group = service.index()->group();
  RaftNode* old_leader = group->WaitForLeader();
  ASSERT_NE(old_leader, nullptr);
  const uint64_t old_term = old_leader->term();
  const std::string leader_name = "ns-index-" + std::to_string(old_leader->id());

  // Isolate the leader (both its service and raft ports, by prefix). It keeps
  // believing it leads; the majority side must elect a higher-term leader.
  const uint64_t partitioned_before = MetricValue("net.fault.partitioned");
  const uint64_t elections_before = MetricValue("raft.election.count");
  network.faults().Partition("leader-isolated", {leader_name});

  RaftNode* new_leader = nullptr;
  const int64_t deadline = MonotonicNanos() + 15'000'000'000;
  while (MonotonicNanos() < deadline) {
    RaftNode* candidate = group->leader();
    if (candidate != nullptr && candidate != old_leader &&
        candidate->term() > old_term) {
      new_leader = candidate;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(new_leader, nullptr) << "no re-election within 15 s";
  EXPECT_GT(new_leader->term(), old_term);
  EXPECT_GT(MetricValue("raft.election.count"), elections_before);

  // The namespace stays writable and readable across the partition.
  EXPECT_TRUE(service.Mkdir("/during-partition").ok());
  EXPECT_TRUE(service.StatDir("/pre").ok());
  EXPECT_GT(network.fault_stats().rpcs_partitioned.load(), 0u);
  EXPECT_GT(MetricValue("net.fault.partitioned"), partitioned_before);

  network.faults().Heal("leader-isolated");
  // Healed: the stale leader hears the higher term and steps down.
  const int64_t stepdown_deadline = MonotonicNanos() + 10'000'000'000;
  while (old_leader->role() == RaftRole::kLeader &&
         MonotonicNanos() < stepdown_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NE(old_leader->role(), RaftRole::kLeader);
  EXPECT_TRUE(service.StatDir("/during-partition").ok());
  ExpectNoPhantomDirs(service);
}

// --- pauses -----------------------------------------------------------------

TEST(ChaosTest, PausedTafDbServerBoundsEveryOperation) {
  Network network(FastNetworkOptions());
  MantleOptions options = ChaosMantleOptions();
  options.op_deadline_nanos = 1'000'000'000;  // 1 s: keep timeouts quick
  MantleService service(&network, options);
  std::vector<std::string> dirs;
  for (int i = 0; i < 6; ++i) {
    dirs.push_back("/p" + std::to_string(i));
    ASSERT_TRUE(service.Mkdir(dirs.back()).ok());
  }

  const uint64_t timeouts_before = MetricValue("net.fault.timeouts");
  const uint64_t pause_waits_before = MetricValue("net.fault.pause_waits");
  network.faults().PauseServer("tafdb-0");
  int timed_out = 0;
  for (const auto& dir : dirs) {
    Stopwatch timer;
    OpResult stat = service.StatDir(dir);  // dirstat reads the TafDB attr row
    EXPECT_LT(timer.ElapsedNanos(), kOpWallCeilingNanos) << dir;
    EXPECT_TRUE(IsCleanChaosCode(stat.status.code())) << stat.status.ToString();
    if (stat.status.code() == StatusCode::kTimeout) {
      ++timed_out;
    }
  }
  // 8 shards across 2 servers: some of the 6 dirs must route to the paused
  // one (and stall), some to the live one (and succeed).
  EXPECT_GT(timed_out, 0);
  EXPECT_LT(timed_out, static_cast<int>(dirs.size()));
  EXPECT_GT(network.fault_stats().rpcs_timed_out.load(), 0u);
  EXPECT_GT(network.fault_stats().pause_waits.load(), 0u);
  EXPECT_GT(MetricValue("net.fault.timeouts"), timeouts_before);
  EXPECT_GT(MetricValue("net.fault.pause_waits"), pause_waits_before);

  // A write touching the paused server is also bounded.
  Stopwatch timer;
  OpResult mk = service.Mkdir("/paused-write");
  EXPECT_LT(timer.ElapsedNanos(), kOpWallCeilingNanos);
  EXPECT_TRUE(IsCleanChaosCode(mk.status.code()));

  network.faults().ResumeServer("tafdb-0");
  // Resumed: the stalled handlers drain and every dir reads fine again.
  for (const auto& dir : dirs) {
    EXPECT_TRUE(service.StatDir(dir).ok()) << dir;
  }
  ExpectNoPhantomDirs(service);
}

// --- mixed scenario ---------------------------------------------------------

TEST(ChaosTest, MixedDropCrashPartitionTrafficNeverHangs) {
  Network network(FastNetworkOptions());
  MantleOptions options = ChaosMantleOptions();
  options.index.follower_read = true;
  options.index.offload_queue_threshold = 0;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/mix").ok());
  ASSERT_TRUE(service.Mkdir("/mix/stable").ok());

  std::atomic<int> dirty_codes{0};
  std::atomic<int> over_budget{0};
  std::atomic<bool> stop{false};
  std::vector<std::string> created;
  std::mutex created_mu;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < 150 && !stop.load(); ++i) {
        const std::string dir =
            "/mix/t" + std::to_string(t) + "_" + std::to_string(i);
        Stopwatch timer;
        OpResult mk = service.Mkdir(dir);
        OpResult stat = service.StatDir("/mix/stable");
        bool renamed_away = false;
        if (i % 7 == 0) {
          // Renames under chaos may time out mid-workflow (ambiguous whether
          // the move landed), so renamed dirs are exempt from the durability
          // sweep below; their statuses must still be clean.
          OpResult ren = service.RenameDir(
              dir, "/mix/r" + std::to_string(t) + "_" + std::to_string(i));
          renamed_away = true;
          if (!IsCleanChaosCode(ren.status.code()) && !ren.status.IsLoopDetected()) {
            dirty_codes.fetch_add(1);
          }
        }
        if (timer.ElapsedNanos() > 3 * kOpWallCeilingNanos) {
          over_budget.fetch_add(1);
        }
        for (const OpResult* op : {&mk, &stat}) {
          if (!IsCleanChaosCode(op->status.code())) {
            dirty_codes.fetch_add(1);
          }
        }
        if (mk.ok() && !renamed_away) {
          std::lock_guard<std::mutex> lock(created_mu);
          created.push_back(dir);
        }
      }
    });
  }

  // Script the chaos while traffic flows: drops -> follower crash ->
  // partition -> heal everything.
  FaultRule drop;
  drop.drop_probability = 0.05;
  network.faults().SetRule("tafdb", drop);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  RaftGroup* group = service.index()->group();
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  const uint32_t victim = leader->id() == 0 ? 1 : 0;
  network.faults().CrashServer("ns-index-" + std::to_string(victim));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  network.faults().RestartServer("ns-index-" + std::to_string(victim));

  leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  network.faults().Partition("mix-iso",
                             {"ns-index-" + std::to_string(leader->id())});
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  network.faults().HealAll();
  network.faults().ClearAll();

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }

  EXPECT_EQ(dirty_codes.load(), 0);
  EXPECT_EQ(over_budget.load(), 0);
  EXPECT_GT(network.fault_stats().injected_faults(), 0u);

  // Healed fabric: reported successes are durable.
  for (const auto& dir : created) {
    EXPECT_TRUE(service.StatDir(dir).ok()) << dir;
  }
  ExpectNoPhantomDirs(service);
}

// --- contention: retries and aborts surface in the registry ------------------

TEST(ChaosTest, SharedDirectoryContentionSurfacesRetriesInMetrics) {
  Network network(FastNetworkOptions());
  MantleOptions options = ChaosMantleOptions();
  // Without delta records every create under one parent contends on the same
  // attribute row, so concurrent 2PC lock conflicts (-> aborts -> retries) are
  // possible - but on a single-core host the writer threads can serialize into
  // full timeslices and never overlap inside a transaction. Pin the conflict:
  // hold a foreign lock on the hot directory's attribute row when the storm
  // starts, and release it once the abort counter proves a conflict fired.
  options.tafdb.enable_delta_records = false;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/hot").ok());
  auto hot_row = service.tafdb()->LocalGet(EntryKey(kRootId, "hot"));
  ASSERT_TRUE(hot_row.has_value());
  Shard* attr_shard = service.tafdb()->shard_map()->Route(hot_row->id);
  ASSERT_TRUE(attr_shard->TryLockKey(AttrKey(hot_row->id), 424242));

  const uint64_t retries_before = MetricValue("core.op.retries");
  const uint64_t aborts_before = MetricValue("tafdb.txn.abort");
  const uint64_t commits_before = MetricValue("tafdb.txn.commit");

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < 40; ++i) {
        const std::string path =
            "/hot/o" + std::to_string(t) + "_" + std::to_string(i);
        if (!service.CreateObject(path, 1).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // At least one writer has aborted against the foreign lock; release it and
  // let the storm finish organically (retry absorbs the conflicts).
  while (MetricValue("tafdb.txn.abort") == aborts_before) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  attr_shard->UnlockKey(AttrKey(hot_row->id), 424242);
  for (auto& writer : writers) {
    writer.join();
  }

  EXPECT_EQ(failures.load(), 0);  // retry absorbs every conflict
  EXPECT_GT(MetricValue("tafdb.txn.commit"), commits_before);
  EXPECT_GT(MetricValue("tafdb.txn.abort"), aborts_before);
  EXPECT_GT(MetricValue("core.op.retries"), retries_before);
  ExpectNoPhantomDirs(service);
}

// --- invalidator / removal list under latency spikes (satellite) -------------

TEST(ChaosTest, InvalidatorDrainsRemovalListUnderInjectedDelays) {
  Network network(FastNetworkOptions());
  MantleOptions options = ChaosMantleOptions();
  options.op_deadline_nanos = 5'000'000'000;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/src").ok());
  ASSERT_TRUE(service.Mkdir("/dst").ok());
  const int kDirs = 12;
  for (int i = 0; i < kDirs; ++i) {
    const std::string base = "/src/d" + std::to_string(i);
    ASSERT_TRUE(service.Mkdir(base).ok());
    // TopDirPathCache only caches paths truncate_k (=3) levels above a
    // resolved leaf, so give each dir a 3-deep subtree and resolve it: the
    // lookup installs `base` itself in the leader's cache, which the rename's
    // invalidation pass must later purge.
    ASSERT_TRUE(service.Mkdir(base + "/x").ok());
    ASSERT_TRUE(service.Mkdir(base + "/x/y").ok());
    ASSERT_TRUE(service.Mkdir(base + "/x/y/z").ok());
    ASSERT_TRUE(service.Lookup(base + "/x/y/z").ok());
    ASSERT_TRUE(service.Lookup(base + "/x/y/z").ok());  // confirm the fill
  }

  // Latency spikes on every index and TafDB link: renames crawl, lookups
  // race them, and the invalidator must still converge.
  FaultRule spike;
  spike.delay_probability = 0.6;
  spike.delay_nanos = 200'000;         // 0.2 ms
  spike.delay_jitter_nanos = 300'000;  // + up to 0.3 ms
  network.faults().SetRule("ns-index", spike);
  network.faults().SetRule("tafdb", spike);

  std::atomic<bool> stop{false};
  std::atomic<int> lookup_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&]() {
      int i = 0;
      while (!stop.load()) {
        const std::string name = "d" + std::to_string(i++ % kDirs);
        OpResult src = service.Lookup("/src/" + name);
        OpResult dst = service.Lookup("/dst/" + name);
        // Mid-rename both may miss transiently; any other failure is dirty.
        for (const OpResult* op : {&src, &dst}) {
          if (!op->ok() && !op->status.IsNotFound() &&
              op->status.code() != StatusCode::kTimeout) {
            lookup_errors.fetch_add(1);
          }
        }
      }
    });
  }

  int renamed = 0;
  for (int i = 0; i < kDirs; ++i) {
    const std::string name = "d" + std::to_string(i);
    if (service.RenameDir("/src/" + name, "/dst/" + name).ok()) {
      ++renamed;
    }
  }
  stop.store(true);
  for (auto& reader : readers) {
    reader.join();
  }
  network.faults().ClearAll();

  EXPECT_EQ(lookup_errors.load(), 0);
  EXPECT_EQ(renamed, kDirs);  // spikes delay but never lose RPCs
  EXPECT_GT(network.fault_stats().rpcs_delayed.load(), 0u);

  // Exactly-one-home: each dir is at its new path and gone from the old one.
  for (int i = 0; i < kDirs; ++i) {
    const std::string name = "d" + std::to_string(i);
    EXPECT_TRUE(service.StatDir("/dst/" + name).ok()) << name;
    EXPECT_TRUE(service.StatDir("/src/" + name).status.IsNotFound()) << name;
  }

  // The invalidator kept pace: passes ran, prefixes were purged, and the
  // removal list drains to empty once the traffic stops.
  IndexReplica* leader_replica = service.index()->LeaderReplica();
  ASSERT_NE(leader_replica, nullptr);
  EXPECT_GT(leader_replica->invalidator().passes(), 0u);
  EXPECT_GT(leader_replica->invalidator().prefixes_invalidated(), 0u);
  const int64_t drain_deadline = MonotonicNanos() + 5'000'000'000;
  while (leader_replica->removal_list().LiveCount() > 0 &&
         MonotonicNanos() < drain_deadline) {
    leader_replica->invalidator().RunPassNow();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(leader_replica->removal_list().LiveCount(), 0u);
  ExpectNoPhantomDirs(service);
}

}  // namespace
}  // namespace mantle
