#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/path.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"

namespace mantle {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status status = Status::NotFound("missing /a/b");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "missing /a/b");
  EXPECT_EQ(status.ToString(), "NotFound: missing /a/b");
}

TEST(StatusTest, RetriableCodes) {
  EXPECT_TRUE(Status::Aborted().IsRetriable());
  EXPECT_TRUE(Status::Busy().IsRetriable());
  EXPECT_FALSE(Status::NotFound().IsRetriable());
  EXPECT_FALSE(Status::Ok().IsRetriable());
  EXPECT_FALSE(Status::LoopDetected().IsRetriable());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kLoopDetected), "LoopDetected");
  EXPECT_EQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("x");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> HelperThatPropagates(bool fail) {
  auto inner = [&]() -> Result<int> {
    if (fail) {
      return Status::Aborted("inner");
    }
    return 5;
  };
  MANTLE_ASSIGN_OR_RETURN(int value, inner());
  return value * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*HelperThatPropagates(false), 10);
  EXPECT_TRUE(HelperThatPropagates(true).status().IsAborted());
}

// --- Path utilities -------------------------------------------------------------

TEST(PathTest, SplitBasic) {
  EXPECT_EQ(SplitPath("/A/B/c"), (std::vector<std::string>{"A", "B", "c"}));
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
}

TEST(PathTest, SplitIgnoresRepeatedSeparators) {
  EXPECT_EQ(SplitPath("//A///B/"), (std::vector<std::string>{"A", "B"}));
}

TEST(PathTest, JoinRoundTrips) {
  EXPECT_EQ(JoinPath({"A", "B", "c"}), "/A/B/c");
  EXPECT_EQ(JoinPath({}), "/");
  EXPECT_EQ(NormalizePath("a//b/"), "/a/b");
}

TEST(PathTest, PrefixAndParent) {
  std::vector<std::string> components{"A", "B", "C"};
  EXPECT_EQ(PathPrefix(components, 0), "/");
  EXPECT_EQ(PathPrefix(components, 2), "/A/B");
  EXPECT_EQ(PathPrefix(components, 9), "/A/B/C");
  EXPECT_EQ(ParentPath("/A/B/c"), "/A/B");
  EXPECT_EQ(ParentPath("/A"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(BaseName("/A/B/c"), "c");
  EXPECT_EQ(BaseName("/"), "");
}

TEST(PathTest, Depth) {
  EXPECT_EQ(PathDepth("/"), 0u);
  EXPECT_EQ(PathDepth("/A/B/c"), 3u);
}

TEST(PathTest, IsPathPrefixSemantics) {
  EXPECT_TRUE(IsPathPrefix("/", "/A/B"));
  EXPECT_TRUE(IsPathPrefix("/A/B", "/A/B"));
  EXPECT_TRUE(IsPathPrefix("/A/B", "/A/B/C"));
  EXPECT_FALSE(IsPathPrefix("/A/B", "/A/BC"));
  EXPECT_FALSE(IsPathPrefix("/A/B/C", "/A/B"));
}

TEST(PathTest, Validation) {
  EXPECT_TRUE(IsValidPath("/a/b"));
  EXPECT_FALSE(IsValidPath("a/b"));
  EXPECT_FALSE(IsValidPath(""));
}

// --- Histogram -------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.Percentile(50), 0);
  EXPECT_EQ(histogram.Mean(), 0);
}

TEST(HistogramTest, RecordsValuesWithBoundedError) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(i * 1000);
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_NEAR(static_cast<double>(histogram.Percentile(50)), 500'000, 500'000 * 0.05);
  EXPECT_NEAR(static_cast<double>(histogram.Percentile(99)), 990'000, 990'000 * 0.05);
  EXPECT_EQ(histogram.max(), 1'000'000);
  EXPECT_EQ(histogram.min(), 1000);
  EXPECT_NEAR(histogram.Mean(), 500'500, 1000);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(100);
  b.Record(1'000'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1'000'000);
  EXPECT_EQ(a.min(), 100);
}

TEST(HistogramTest, CdfIsMonotone) {
  Histogram histogram;
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    histogram.Record(static_cast<int64_t>(rng.Uniform(10'000'000)));
  }
  auto cdf = histogram.Cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_fraction = 0;
  int64_t prev_value = -1;
  for (const auto& point : cdf) {
    EXPECT_GE(point.fraction, prev_fraction);
    EXPECT_GT(point.value_nanos, prev_value);
    prev_fraction = point.fraction;
    prev_value = point.value_nanos;
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(HistogramTest, ConcurrentRecording) {
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&histogram]() {
      for (int i = 0; i < 10'000; ++i) {
        histogram.Record(i);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), 40'000u);
}

// --- Random ------------------------------------------------------------------------

TEST(RandomTest, UniformStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, DeterministicForSameSeed) {
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, ZipfianSkewsTowardsHead) {
  ZipfianGenerator zipf(1000, 0.99, 3);
  int head_hits = 0;
  const int samples = 20'000;
  for (int i = 0; i < samples; ++i) {
    uint64_t v = zipf.Next();
    EXPECT_LT(v, 1000u);
    if (v < 10) {
      ++head_hits;
    }
  }
  // The top 1% of keys should draw far more than 1% of accesses.
  EXPECT_GT(head_hits, samples / 10);
}

// --- ThreadPool ----------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter]() { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.completed_tasks(), 100u);
}

TEST(ThreadPoolTest, FuturesDeliverResults) {
  ThreadPool pool(2);
  auto future = pool.SubmitWithResult([]() { return 7 * 6; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([]() {}));
}

TEST(ThreadPoolTest, DrainsQueueOnShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter]() { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// --- Clock / sync ----------------------------------------------------------------------

TEST(ClockTest, PreciseSleepWaitsAtLeastRequested) {
  const int64_t start = MonotonicNanos();
  PreciseSleep(2'000'000);  // 2 ms
  EXPECT_GE(MonotonicNanos() - start, 2'000'000);
}

TEST(SyncTest, CountDownLatchReleases) {
  CountDownLatch latch(3);
  std::thread worker([&latch]() {
    latch.CountDown();
    latch.CountDown();
    latch.CountDown();
  });
  latch.Wait();
  worker.join();
}

TEST(SyncTest, SpinLockMutualExclusion) {
  SpinLock lock;
  int shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 10'000; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++shared;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(shared, 40'000);
}

}  // namespace
}  // namespace mantle
