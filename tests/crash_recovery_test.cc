// Crash recovery and self-healing: the durable intent table, the IndexNode
// cold-start rebuild, and fsck repair mode.
//
// Every scenario kills a component at a deliberately nasty point - the 2PC
// in-doubt window, right after the commit point, mid-compaction, the whole
// index Raft group at once - then runs the matching recovery pass and asserts
// the contract:
//   * zero in-doubt transactions and zero stranded locks after recovery;
//   * every write that passed its commit point survives, every write that did
//     not is cleanly absent (presumed abort);
//   * doomed-txn tombstones and intent rows are garbage, not permanent state;
//   * Fsck() comes back clean, and where a divergence is expected (a commit
//     redelivered without its index propose), Fsck(RepairOptions) heals it.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/net/fault_injector.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// Counters are process-global and tests share the process: assert deltas.
uint64_t MetricValue(const char* name) {
  return obs::Metrics::Instance().CounterValue(name);
}

MantleOptions RecoveryMantleOptions() {
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 2'000'000'000;  // 2 s per op
  options.index.raft.election_timeout_min_nanos = 60'000'000;
  options.index.raft.election_timeout_max_nanos = 120'000'000;
  options.index.raft.election_poll_nanos = 5'000'000;
  return options;
}

bool IsCleanChaosCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kAborted:
    case StatusCode::kBusy:
    case StatusCode::kTimeout:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

// Arms `point` and issues mkdirs under `stem` until one trips it. Only a
// cross-shard transaction reaches the 2PC crash points; the occasional mkdir
// whose allocated id lands on the parent's shard takes the single-shard fast
// path and simply succeeds (appended to `succeeded` when provided). Returns
// the path whose coordinator "died".
std::string MkdirUntilCrash(MantleService& service, TxnCoordinator& coordinator,
                            TxnCoordinator::CrashPoint point, const std::string& stem,
                            std::vector<std::string>* succeeded = nullptr) {
  coordinator.SetCrashPoint(point);
  for (int i = 0; i < 64; ++i) {
    const std::string path = stem + std::to_string(i);
    auto result = service.Mkdir(path);
    if (result.status.code() == StatusCode::kUnavailable) {
      return path;
    }
    EXPECT_TRUE(result.ok()) << path << ": " << result.status.ToString();
    if (!result.ok()) {
      break;
    }
    if (succeeded != nullptr) {
      succeeded->push_back(path);
    }
  }
  ADD_FAILURE() << "no mkdir consumed the armed crash point";
  return "";
}

// --- coordinator crash: the in-doubt window ---------------------------------

TEST(CrashRecoveryTest, CoordinatorCrashBeforeDecisionPresumedAborts) {
  Network network(FastNetworkOptions());
  MantleService service(&network, RecoveryMantleOptions());
  TxnCoordinator& coordinator = service.tafdb()->coordinator();
  ASSERT_TRUE(service.Mkdir("/survivor").ok());

  const uint64_t in_doubt_before = MetricValue("txn.recovery.in_doubt_aborted");
  const std::string victim = MkdirUntilCrash(
      service, coordinator, TxnCoordinator::CrashPoint::kAfterPrepare, "/d");
  ASSERT_FALSE(victim.empty());
  // The crash stranded exactly one kInDoubt intent row plus the prepare locks.
  EXPECT_EQ(coordinator.intent_log().Size(), 1u);

  auto report = service.tafdb()->RecoverCoordinator();
  EXPECT_EQ(report.scanned, 1u);
  EXPECT_EQ(report.in_doubt_aborted, 1u);
  EXPECT_GE(report.locks_released, 1u);
  EXPECT_EQ(report.commits_redelivered, 0u);
  EXPECT_EQ(report.rows_gced, 1u);
  EXPECT_EQ(coordinator.intent_log().Size(), 0u);
  EXPECT_EQ(coordinator.DoomedLive(), 0u);
  EXPECT_EQ(MetricValue("txn.recovery.in_doubt_aborted"), in_doubt_before + 1);

  // Presumed abort: the directory never existed, the name is free, and the
  // parent's stranded attribute lock is gone (the retry would otherwise spin).
  EXPECT_EQ(service.StatDir(victim).status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(service.Mkdir(victim).ok());
  EXPECT_TRUE(service.StatDir("/survivor").ok());
  EXPECT_TRUE(service.Fsck().clean());
}

// --- coordinator crash: after the commit point ------------------------------

TEST(CrashRecoveryTest, CoordinatorCrashAfterCommitDecisionRedelivers) {
  Network network(FastNetworkOptions());
  MantleService service(&network, RecoveryMantleOptions());
  TxnCoordinator& coordinator = service.tafdb()->coordinator();
  const InodeId root = service.index()->LeaderReplica()->table().root_id();

  const uint64_t redelivered_before = MetricValue("txn.recovery.commits_redelivered");
  const std::string victim = MkdirUntilCrash(
      service, coordinator, TxnCoordinator::CrashPoint::kAfterDecisionLogged, "/r");
  ASSERT_FALSE(victim.empty());
  const std::string name = victim.substr(1);
  // Phase two never ran: the participants hold locks and no row is visible.
  EXPECT_FALSE(service.tafdb()->LocalGet(EntryKey(root, name)).has_value());

  auto report = service.tafdb()->RecoverCoordinator();
  EXPECT_EQ(report.scanned, 1u);
  EXPECT_EQ(report.commits_redelivered, 1u);
  EXPECT_EQ(report.in_doubt_aborted, 0u);
  EXPECT_GE(report.locks_released, 1u);
  EXPECT_EQ(coordinator.intent_log().Size(), 0u);
  EXPECT_EQ(MetricValue("txn.recovery.commits_redelivered"), redelivered_before + 1);

  // The redelivered commit materialized the TafDB rows. The index never heard
  // of the directory (the client died before the propose), so fsck flags an
  // unindexed row and repair heals it into the index.
  ASSERT_TRUE(service.tafdb()->LocalGet(EntryKey(root, name)).has_value());
  auto audit = service.Fsck();
  ASSERT_EQ(audit.unindexed_dir_row.size(), 1u);

  const uint64_t indexed_before = MetricValue("fsck.repaired.dirs_indexed");
  auto repair = service.Fsck(MantleService::RepairOptions{});
  EXPECT_EQ(repair.dirs_indexed, 1u);
  EXPECT_TRUE(repair.remaining.clean());
  EXPECT_EQ(MetricValue("fsck.repaired.dirs_indexed"), indexed_before + 1);
  EXPECT_TRUE(service.StatDir(victim).ok());
}

// --- doomed tombstones are garbage, not permanent state ---------------------

TEST(CrashRecoveryTest, DoomedTombstonesAreGarbageCollected) {
  Network network(FastNetworkOptions());
  MantleService service(&network, RecoveryMantleOptions());
  TafDb* db = service.tafdb();
  TxnCoordinator& coordinator = db->coordinator();
  ShardMap* shards = db->shard_map();
  ASSERT_TRUE(service.Mkdir("/base").ok());

  // Deterministic doom: a transaction spanning one key on a server that stays
  // up and one on a server we pause, with the intent row placed on the live
  // server. The paused prepare outlives the deadline, so the coordinator
  // dooms the txn instead of waiting.
  const std::string paused = "tafdb-1";
  InodeId on_up = 0;
  InodeId on_paused = 0;
  for (InodeId pid = 1'000'000; pid < 1'000'064 && (on_up == 0 || on_paused == 0); ++pid) {
    if (shards->RouteServer(pid)->name() == paused) {
      if (on_paused == 0) {
        on_paused = pid;
      }
    } else if (on_up == 0) {
      on_up = pid;
    }
  }
  ASSERT_NE(on_up, 0u);
  ASSERT_NE(on_paused, 0u);
  uint64_t txn_id = 5'000'000;
  while (shards->ServerAt(static_cast<uint32_t>(txn_id % shards->num_shards()))->name() ==
         paused) {
    ++txn_id;
  }
  std::vector<WriteOp> ops;
  for (InodeId pid : {on_up, on_paused}) {
    WriteOp op;
    op.kind = WriteOp::Kind::kPut;
    op.expect = WriteOp::Expect::kNone;
    op.key = EntryKey(pid, "doomed-probe");
    op.value = MetaValue{EntryType::kObject, pid, kPermAll, 0, 0, 0, 0};
    ops.push_back(std::move(op));
  }

  const uint64_t doomed_before = coordinator.stats().doomed.load();
  network.faults().PauseServer(paused);
  {
    OpContext ctx;
    ctx.deadline = Deadline::After(300'000'000);  // 300 ms budget for the txn
    ScopedOpContext scoped(ctx);
    Status status = db->Execute(ops, txn_id);
    EXPECT_EQ(status.code(), StatusCode::kTimeout) << status.ToString();
  }
  EXPECT_EQ(coordinator.stats().doomed.load(), doomed_before + 1);
  EXPECT_GE(coordinator.DoomedLive(), 1u);
  network.faults().ResumeServer(paused);

  // Once the resumed server drains, the abandoned prepare has self-aborted
  // against its tombstone and every cleanup abort has acked: the last
  // reference out GCs the tombstone and its intent row. No recovery needed.
  for (uint32_t i = 0; i < shards->num_shards(); ++i) {
    shards->ServerAt(i)->Drain();
  }
  EXPECT_EQ(coordinator.DoomedLive(), 0u);
  EXPECT_EQ(obs::Metrics::Instance().GaugeValue("txn.doomed.live"), 0);
  EXPECT_EQ(coordinator.intent_log().Size(), 0u);
  // The aborted probe applied nothing.
  EXPECT_FALSE(db->LocalGet(EntryKey(on_up, "doomed-probe")).has_value());
  EXPECT_FALSE(db->LocalGet(EntryKey(on_paused, "doomed-probe")).has_value());

  // A recovery pass over the already-GC'd table is a no-op.
  auto report = db->RecoverCoordinator();
  EXPECT_EQ(report.scanned, 0u);
  EXPECT_EQ(coordinator.DoomedLive(), 0u);

  EXPECT_TRUE(service.Mkdir("/base/after").ok());
  EXPECT_TRUE(service.Fsck().clean());
}

// --- compactor crash mid-CompactDirectory -----------------------------------

TEST(CrashRecoveryTest, CompactorCrashOrphansDeltasAndRecoveryFoldsExactlyOnce) {
  Network network(FastNetworkOptions());
  MantleOptions options = RecoveryMantleOptions();
  options.tafdb.force_delta_records = true;
  options.tafdb.start_compactor = false;  // deterministic passes only
  MantleService service(&network, options);
  TafDb* db = service.tafdb();

  ASSERT_TRUE(service.Mkdir("/hot").ok());
  constexpr int kObjects = 24;
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(service.CreateObject("/hot/o" + std::to_string(i), 1).ok());
  }

  // Crash between dequeue and fold: the batch - the only in-memory record of
  // these directories - is dropped, the delta rows stay behind.
  db->SimulateCompactionCrashOnce();
  db->CompactAllPending();
  EXPECT_EQ(db->PendingCompactions(), 0u);

  auto audit = service.Fsck();
  EXPECT_FALSE(audit.orphaned_delta.empty());
  EXPECT_TRUE(audit.clean());  // flagged, but not corruption: merged reads still work

  // Nothing lost while stranded: merged attribute reads fold live deltas.
  StatResult hot_stat = service.StatDir("/hot");
  ASSERT_TRUE(hot_stat.ok());
  EXPECT_EQ(hot_stat.info.child_count, kObjects);

  const uint64_t compacted_before = MetricValue("fsck.repaired.delta_dirs");
  auto repair = service.Fsck(MantleService::RepairOptions{});
  EXPECT_GE(repair.delta_dirs_compacted, 1u);
  EXPECT_TRUE(repair.remaining.orphaned_delta.empty());
  EXPECT_TRUE(repair.remaining.clean());
  EXPECT_GE(MetricValue("fsck.repaired.delta_dirs"), compacted_before + 1);

  // Folded exactly once: the primary row carries the full count, no delta
  // rows remain, and another pass does not double-apply.
  auto hot = service.index()->LeaderReplica()->table().Lookup(
      service.index()->LeaderReplica()->table().root_id(), "hot");
  ASSERT_TRUE(hot.has_value());
  EXPECT_TRUE(db->shard_map()->Route(hot->id)->ScanDeltas(hot->id).empty());
  db->CompactAllPending();
  hot_stat = service.StatDir("/hot");
  ASSERT_TRUE(hot_stat.ok());
  EXPECT_EQ(hot_stat.info.child_count, kObjects);
}

// --- total IndexNode group loss ---------------------------------------------

TEST(CrashRecoveryTest, IndexGroupLossRebuildsFromTafDb) {
  Network network(FastNetworkOptions());
  MantleService service(&network, RecoveryMantleOptions());
  ASSERT_TRUE(service.Mkdir("/a").ok());
  ASSERT_TRUE(service.Mkdir("/a/b").ok());
  ASSERT_TRUE(service.Mkdir("/c").ok());
  ASSERT_TRUE(service.CreateObject("/a/b/o", 7).ok());

  const uint64_t rebuilds_before = MetricValue("index.rebuild.count");
  service.CrashIndexGroup();
  // Every replica is gone - the one failure replication cannot mask. Clients
  // fail clean within their deadline instead of hanging.
  auto down = service.StatDir("/a");
  EXPECT_FALSE(down.ok());
  EXPECT_TRUE(IsCleanChaosCode(down.status.code())) << down.status.ToString();

  auto report = service.RecoverIndexFromTafDb();
  EXPECT_EQ(report.dirs_loaded, 3u);     // /a, /a/b, /c (root is implicit)
  EXPECT_EQ(report.replicas_rebuilt, 3u);
  EXPECT_EQ(MetricValue("index.rebuild.count"), rebuilds_before + 1);

  // Acknowledged metadata is all back: lookups, object reads, and new writes.
  EXPECT_TRUE(service.StatDir("/a/b").ok());
  EXPECT_TRUE(service.StatObject("/a/b/o").ok());
  EXPECT_TRUE(service.Mkdir("/c/fresh").ok());
  EXPECT_TRUE(service.StatDir("/c/fresh").ok());
  EXPECT_TRUE(service.Fsck().clean());
}

TEST(CrashRecoveryTest, IndexGroupLossUnderConcurrentTraffic) {
  Network network(FastNetworkOptions());
  MantleService service(&network, RecoveryMantleOptions());
  ASSERT_TRUE(service.Mkdir("/live").ok());

  // Object creates and stats only: directory creation during the outage would
  // legitimately strand unindexed rows (txn committed, propose dead), which
  // is repair's job, not this test's. Here we assert the liveness contract.
  std::atomic<bool> stop{false};
  std::atomic<int> dirty{0};
  std::vector<std::string> created[2];
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([w, &service, &stop, &dirty, &created]() {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string path =
            "/live/w" + std::to_string(w) + "-" + std::to_string(i);
        auto create = service.CreateObject(path, 1);
        if (create.ok()) {
          created[w].push_back(path);
        }
        if (!IsCleanChaosCode(create.status.code())) {
          dirty.fetch_add(1);
        }
        auto stat = service.StatDir("/live");
        if (!IsCleanChaosCode(stat.status.code())) {
          dirty.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.CrashIndexGroup();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  auto report = service.RecoverIndexFromTafDb();
  EXPECT_EQ(report.dirs_loaded, 1u);  // /live
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }

  EXPECT_EQ(dirty.load(), 0);
  // Every acknowledged create survived the group loss and the rebuild.
  for (const auto& paths : created) {
    for (const auto& path : paths) {
      EXPECT_TRUE(service.StatObject(path).ok()) << path;
    }
  }
  EXPECT_TRUE(service.Fsck().clean());
}

// --- fsck repair round-trips ------------------------------------------------

TEST(CrashRecoveryTest, FsckRepairsEveryCorruptionClass) {
  Network network(FastNetworkOptions());
  MantleService service(&network, RecoveryMantleOptions());
  TafDb* db = service.tafdb();
  const IndexTable& table = service.index()->LeaderReplica()->table();
  const InodeId root = table.root_id();
  ASSERT_TRUE(service.Mkdir("/lost-entry").ok());
  ASSERT_TRUE(service.Mkdir("/lost-attr").ok());
  ASSERT_TRUE(service.Mkdir("/forged-id").ok());
  ASSERT_TRUE(service.Mkdir("/parent").ok());
  ASSERT_TRUE(service.CreateObject("/lost-attr/keep", 1).ok());

  // Class 1: the entry row vanishes behind the service's back.
  WriteOp erase_entry;
  erase_entry.kind = WriteOp::Kind::kDelete;
  erase_entry.key = EntryKey(root, "lost-entry");
  db->shard_map()->Route(root)->ApplyOps({erase_entry});

  // Class 2: the attribute primary vanishes.
  auto lost_attr = table.Lookup(root, "lost-attr");
  ASSERT_TRUE(lost_attr.has_value());
  WriteOp erase_attr;
  erase_attr.kind = WriteOp::Kind::kDelete;
  erase_attr.key = AttrKey(lost_attr->id);
  db->shard_map()->Route(lost_attr->id)->ApplyOps({erase_attr});

  // Class 3: the entry row's id diverges from the index.
  auto forged_row = db->LocalGet(EntryKey(root, "forged-id"));
  ASSERT_TRUE(forged_row.has_value());
  MetaValue forged = *forged_row;
  forged.id = 999999;
  WriteOp put_forged;
  put_forged.kind = WriteOp::Kind::kPut;
  put_forged.key = EntryKey(root, "forged-id");
  put_forged.value = forged;
  db->shard_map()->Route(root)->ApplyOps({put_forged});

  // Class 4: a directory row the index never heard of (crash between the
  // TafDB transaction and the Raft propose).
  auto parent = table.Lookup(root, "parent");
  ASSERT_TRUE(parent.has_value());
  db->LoadPut(EntryKey(parent->id, "orphan"),
              MetaValue{EntryType::kDirectory, 424242, kPermAll, 0, 0, 0, 0, parent->id});
  db->LoadPut(AttrKey(424242),
              MetaValue{EntryType::kAttrPrimary, 424242, kPermAll, 0, 0, 0, 0, parent->id});

  auto before = service.Fsck();
  EXPECT_FALSE(before.clean());

  auto repair = service.Fsck(MantleService::RepairOptions{});
  EXPECT_EQ(repair.entry_rows_restored, 1u);
  EXPECT_EQ(repair.ids_corrected, 1u);
  EXPECT_EQ(repair.attr_rows_restored, 1u);
  EXPECT_GE(repair.dirs_indexed, 1u);
  EXPECT_TRUE(repair.remaining.clean())
      << "entry=" << repair.remaining.missing_entry_row.size()
      << " id=" << repair.remaining.id_mismatch.size()
      << " attr=" << repair.remaining.missing_attr_row.size()
      << " unindexed=" << repair.remaining.unindexed_dir_row.size();

  // Repaired metadata actually serves again.
  EXPECT_TRUE(service.StatDir("/lost-entry").ok());
  StatResult lost_attr_stat = service.StatDir("/lost-attr");
  ASSERT_TRUE(lost_attr_stat.ok());
  EXPECT_EQ(lost_attr_stat.info.child_count, 1);  // recounted from the entry rows
  EXPECT_TRUE(service.StatDir("/forged-id").ok());
  EXPECT_TRUE(service.StatDir("/parent/orphan").ok());
  EXPECT_TRUE(service.Fsck().clean());
}

// --- the acceptance drill: coordinator crash mid-2PC + total index loss -----

TEST(CrashRecoveryTest, AcceptanceSeededCrashDrillEndsCleanWithoutRepair) {
  NetworkOptions net = FastNetworkOptions();
  net.fault_seed = 0xabad1deaULL;  // seeded: the drill replays identically
  Network network(net);
  MantleService service(&network, RecoveryMantleOptions());
  TxnCoordinator& coordinator = service.tafdb()->coordinator();

  // A small acknowledged workload that must survive everything below.
  std::vector<std::string> acked_dirs = {"/p1", "/p2"};
  std::vector<std::string> acked_objects;
  for (const auto& dir : acked_dirs) {
    ASSERT_TRUE(service.Mkdir(dir).ok());
    const std::string object = dir + "/o";
    ASSERT_TRUE(service.CreateObject(object, 3).ok());
    acked_objects.push_back(object);
  }

  // Crash 1: a coordinator dies in the in-doubt window under /p1, stranding
  // the intent row and the prepare locks (including /p1's attribute row).
  std::vector<std::string> extra_dirs;  // fast-path mkdirs that slipped through
  const std::string in_doubt = MkdirUntilCrash(
      service, coordinator, TxnCoordinator::CrashPoint::kAfterPrepare, "/p1/x", &extra_dirs);
  ASSERT_FALSE(in_doubt.empty());
  // Crash 2: another dies right after its commit point under /p2 (disjoint
  // keys, so the stranded /p1 locks cannot interfere with this prepare).
  const std::string committed = MkdirUntilCrash(
      service, coordinator, TxnCoordinator::CrashPoint::kAfterDecisionLogged, "/p2/y",
      &extra_dirs);
  ASSERT_FALSE(committed.empty());
  EXPECT_EQ(coordinator.intent_log().Size(), 2u);

  // Crash 3: the entire IndexNode Raft group goes down at once.
  service.CrashIndexGroup();
  EXPECT_FALSE(service.StatDir("/p1").ok());

  // Recovery, in cold-start order: resolve the transaction log first (TafDB
  // is self-contained), then rebuild the index from the recovered rows - the
  // redelivered commit's directory is picked up by the rebuild scan, so no
  // manual fsck repair is needed.
  auto txn_report = service.tafdb()->RecoverCoordinator();
  EXPECT_EQ(txn_report.scanned, 2u);
  EXPECT_EQ(txn_report.in_doubt_aborted, 1u);
  EXPECT_EQ(txn_report.commits_redelivered, 1u);
  EXPECT_EQ(txn_report.rows_gced, 2u);

  auto index_report = service.RecoverIndexFromTafDb();
  // /p1, /p2, the redelivered dir, and any fast-path mkdirs from the loops.
  EXPECT_EQ(index_report.dirs_loaded, 3u + extra_dirs.size());
  EXPECT_EQ(index_report.replicas_rebuilt, 3u);

  // Zero in-doubt transactions, zero live tombstones.
  EXPECT_EQ(coordinator.intent_log().Size(), 0u);
  EXPECT_EQ(coordinator.DoomedLive(), 0u);

  // Every acknowledged write is readable.
  for (const auto& dir : acked_dirs) {
    EXPECT_TRUE(service.StatDir(dir).ok()) << dir;
  }
  for (const auto& object : acked_objects) {
    EXPECT_TRUE(service.StatObject(object).ok()) << object;
  }
  for (const auto& dir : extra_dirs) {
    EXPECT_TRUE(service.StatDir(dir).ok()) << dir;
  }
  // The presumed-aborted mkdir is absent and retriable; the post-commit-point
  // mkdir survived its coordinator and the group loss.
  EXPECT_EQ(service.StatDir(in_doubt).status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(service.Mkdir(in_doubt).ok());
  EXPECT_TRUE(service.StatDir(committed).ok());

  // And the namespace audits clean with no manual repair.
  EXPECT_TRUE(service.Fsck().clean());
}

}  // namespace
}  // namespace mantle
