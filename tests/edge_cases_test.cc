// Edge cases across modules: protocol corner states, odd path shapes, cache
// statistics, and listing under concurrent renames.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/path.h"
#include "src/raft/group.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// --- InstallSnapshot protocol corners ------------------------------------------

class NullMachine final : public StateMachine {
 public:
  std::string Apply(uint64_t, const std::string& command) override { return command; }
  std::string Snapshot() override { return "S"; }
  void Restore(const std::string&) override { restored = true; }
  bool restored = false;
};

TEST(InstallSnapshotEdgeTest, StaleTermRejectedAndCoveredIndexAccepted) {
  Network network(FastNetworkOptions());
  RaftOptions options = FastRaftOptions();
  options.enable_election_timer = false;
  std::vector<NullMachine*> machines(3, nullptr);
  RaftGroup group(
      &network, "snapedge", 3, 0,
      [&machines](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto machine = std::make_unique<NullMachine>();
        machines[id] = machine.get();
        return machine;
      },
      options);

  RaftNode* node = group.node(0);
  AppendEntriesRequest fill;
  fill.term = 5;
  fill.leader_id = 1;
  ASSERT_TRUE(node->HandleAppendEntries(fill).success);

  InstallSnapshotRequest stale;
  stale.term = 3;  // behind the node's term
  stale.snapshot_index = 100;
  InstallSnapshotReply reply = node->HandleInstallSnapshot(stale);
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.term, 5u);
  EXPECT_FALSE(machines[0]->restored);

  // A snapshot at-or-below the local apply point is acknowledged but not
  // installed (nothing to gain).
  InstallSnapshotRequest covered;
  covered.term = 5;
  covered.snapshot_index = 0;
  EXPECT_TRUE(node->HandleInstallSnapshot(covered).success);
  EXPECT_FALSE(machines[0]->restored);

  // A genuinely ahead snapshot installs and fast-forwards the apply point.
  InstallSnapshotRequest ahead;
  ahead.term = 5;
  ahead.snapshot_index = 40;
  ahead.snapshot_term = 5;
  ahead.data = "S";
  EXPECT_TRUE(node->HandleInstallSnapshot(ahead).success);
  EXPECT_TRUE(machines[0]->restored);
  EXPECT_EQ(node->last_applied(), 40u);
  EXPECT_EQ(node->last_log_index(), 40u);
}

// --- odd path shapes -------------------------------------------------------------

TEST(PathEdgeTest, LongComponentsAndManySlashes) {
  const std::string long_name(200, 'x');
  EXPECT_EQ(SplitPath("/" + long_name).size(), 1u);
  EXPECT_EQ(BaseName("///" + long_name + "///"), long_name);
  EXPECT_EQ(NormalizePath("////a////b////"), "/a/b");
  EXPECT_TRUE(IsPathPrefix("/a", "/a///b"));  // prefix check on normalized forms
}

TEST(PathEdgeTest, ServiceHandlesUnusualNames) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  // Names with dots, dashes, spaces and unicode bytes are plain bytes here.
  for (const char* name : {"/.hidden", "/with space", "/d.o.t.s", "/uni\xc3\xa9"}) {
    ASSERT_TRUE(service.Mkdir(name).ok()) << name;
    EXPECT_TRUE(service.StatDir(name).ok()) << name;
  }
  // Repeated separators normalize to the same entry.
  ASSERT_TRUE(service.CreateObject("/.hidden//obj", 5).ok());
  EXPECT_TRUE(service.StatObject("/.hidden/obj").ok());
  EXPECT_TRUE(service.CreateObject("/.hidden/obj", 5).status.IsAlreadyExists());
}

TEST(PathEdgeTest, RootOperationsRejectedEverywhere) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  EXPECT_FALSE(service.Rmdir("/").ok());
  EXPECT_FALSE(service.CreateObject("/", 1).ok());
  EXPECT_FALSE(service.DeleteObject("/").ok());
  EXPECT_FALSE(service.RenameDir("/", "/x").ok());
  EXPECT_TRUE(service.Mkdir("/").status.IsAlreadyExists());
  EXPECT_TRUE(service.StatDir("/").ok());  // the root itself is stat-able
  std::vector<std::string> names;
  EXPECT_TRUE(service.ReadDir("/", &names).ok());
}

// --- cache statistics and deep-nesting behaviour ----------------------------------

TEST(CacheStatsTest, HitRateRisesOnRepeatedDeepLookups) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.index.follower_read = false;
  MantleService service(&network, options);
  std::string path;
  for (int level = 0; level < 8; ++level) {
    path += "/lv" + std::to_string(level);
    ASSERT_TRUE(service.BulkLoadDir(path).ok());
  }
  ASSERT_TRUE(service.BulkLoadObject(path + "/o", 1).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.StatObject(path + "/o").ok());
  }
  auto stats = service.index()->LeaderReplica()->cache().stats();
  EXPECT_EQ(stats.fills, 1u);
  EXPECT_GE(stats.hits, 19u);
}

TEST(CacheStatsTest, VeryDeepPathsResolveAndCacheOnePrefix) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  std::string path;
  for (int level = 0; level < 40; ++level) {  // far beyond the study's average
    path += "/deep" + std::to_string(level);
    ASSERT_TRUE(service.BulkLoadDir(path).ok());
  }
  ASSERT_TRUE(service.BulkLoadObject(path + "/o", 1).ok());
  OpResult result = service.StatObject(path + "/o");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.rpcs, 2);
  // Prefix cached at depth 40 - k.
  EXPECT_TRUE(service.index()
                  ->LeaderReplica()
                  ->cache()
                  .Lookup(PathPrefix(SplitPath(path + "/o"), 41 - 3))
                  .has_value());
}

// --- listing under concurrent rename ----------------------------------------------

TEST(ListingEdgeTest, PagingAcrossARenamedDirectoryFailsCleanly) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/pages").ok());
  for (int i = 0; i < 20; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "o%02d", i);
    ASSERT_TRUE(service.CreateObject(std::string("/pages/") + name, 1).ok());
  }
  MetadataService::ListPage page;
  ASSERT_TRUE(service.ListObjects("/pages", "", 5, &page).ok());
  ASSERT_TRUE(service.Mkdir("/elsewhere").ok());
  ASSERT_TRUE(service.RenameDir("/pages", "/elsewhere/pages2").ok());
  // Continuing under the old path reports NotFound - no phantom results.
  EXPECT_TRUE(
      service.ListObjects("/pages", page.next_start_after, 5, &page).status.IsNotFound());
  // Continuation tokens remain valid under the new path.
  MetadataService::ListPage moved;
  ASSERT_TRUE(service.ListObjects("/elsewhere/pages2", "o04", 100, &moved).ok());
  EXPECT_EQ(moved.names.size(), 15u);
}

// --- removal list version monotonicity under concurrency ---------------------------

TEST(RemovalVersionTest, VersionNeverDecreasesUnderConcurrentInserts) {
  RemovalList list;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::thread observer([&]() {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t now = list.version();
      if (now < last) {
        violations.fetch_add(1);
      }
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&list, t]() {
      for (int i = 0; i < 1000; ++i) {
        auto token = list.Insert("/w" + std::to_string(t) + "/" + std::to_string(i));
        list.MarkDone(token);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(list.version(), 4000u);
}

}  // namespace
}  // namespace mantle
