// Fault tolerance (paper §5.3): IndexNode leader failover during live
// traffic, proxy-failover idempotence via rename UUIDs, and follower-read
// behaviour with degraded replicas.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/common/path.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

MantleOptions FailoverMantleOptions() {
  MantleOptions options = FastMantleOptions();
  // Faster elections so failover tests stay quick.
  options.index.raft.election_timeout_min_nanos = 60'000'000;
  options.index.raft.election_timeout_max_nanos = 120'000'000;
  options.index.raft.election_poll_nanos = 5'000'000;
  options.index.raft.propose_timeout_nanos = 8'000'000'000;
  return options;
}

TEST(FaultToleranceTest, IndexNodeLeaderFailoverPreservesNamespace) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FailoverMantleOptions());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.Mkdir("/pre" + std::to_string(i)).ok());
  }

  RaftGroup* group = service.index()->group();
  RaftNode* old_leader = group->WaitForLeader();
  ASSERT_NE(old_leader, nullptr);
  old_leader->Stop();

  // New leader emerges; the namespace is intact and writable.
  RaftNode* new_leader = nullptr;
  const int64_t deadline = MonotonicNanos() + 10'000'000'000;
  while (MonotonicNanos() < deadline) {
    new_leader = group->leader();
    if (new_leader != nullptr && new_leader != old_leader) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader, old_leader);

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service.StatDir("/pre" + std::to_string(i)).ok()) << i;
  }
  EXPECT_TRUE(service.Mkdir("/post").ok());
  EXPECT_TRUE(service.StatDir("/post").ok());
}

TEST(FaultToleranceTest, MkdirsDuringFailoverNeverCorruptState) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FailoverMantleOptions());
  ASSERT_TRUE(service.Mkdir("/work").ok());

  std::atomic<int> successes{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < 200 && !stop.load(); ++i) {
        if (service.Mkdir("/work/d" + std::to_string(t) + "_" + std::to_string(i)).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  RaftGroup* group = service.index()->group();
  RaftNode* old_leader = group->WaitForLeader();
  ASSERT_NE(old_leader, nullptr);
  old_leader->Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& writer : writers) {
    writer.join();
  }

  // Every directory whose mkdir reported success must be resolvable.
  int verified = 0;
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 200; ++i) {
      const std::string path = "/work/d" + std::to_string(t) + "_" + std::to_string(i);
      if (service.StatDir(path).ok()) {
        ++verified;
      }
    }
  }
  EXPECT_GE(verified, successes.load());
  EXPECT_GT(successes.load(), 0);
}

TEST(FaultToleranceTest, RenameUuidMakesPrepareIdempotent) {
  // §5.3: a proxy crash after taking the rename lock must not deadlock the
  // namespace - the retry (same UUID) re-acquires the lock and completes.
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/victim").ok());
  ASSERT_TRUE(service.Mkdir("/target").ok());

  IndexService* index = service.index();
  const uint64_t uuid = 777;
  auto first = index->RenamePrepare(SplitPath("/victim"), SplitPath("/target"), "v", uuid);
  ASSERT_TRUE(first.ok());
  // "Proxy dies" here. The replacement proxy retries the same UUID.
  auto retry = index->RenamePrepare(SplitPath("/victim"), SplitPath("/target"), "v", uuid);
  ASSERT_TRUE(retry.ok());
  // A different rename (different UUID) is still excluded until completion.
  auto foreign = index->RenamePrepare(SplitPath("/victim"), SplitPath("/target"), "x", 888);
  EXPECT_TRUE(foreign.status().IsBusy());
  // Complete the original: lock released, foreign proceeds.
  ASSERT_TRUE(index
                  ->RenameCommit(retry->src_pid, "victim", retry->dst_pid, "v", uuid,
                                 retry->src_path)
                  .ok());
  EXPECT_FALSE(index->LeaderReplica()->table().IsLocked(first->src_id));
}

TEST(FaultToleranceTest, FollowerReadsSurviveFollowerCrash) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.index.follower_read = true;
  options.index.offload_queue_threshold = 0;  // exercise replicas aggressively
  MantleService service(&network, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Mkdir("/f" + std::to_string(i)).ok());
  }
  // Crash one follower; lookups must keep succeeding via the survivors.
  RaftGroup* group = service.index()->group();
  RaftNode* leader = group->WaitForLeader();
  for (uint32_t i = 0; i < group->num_nodes(); ++i) {
    if (group->node(i) != leader) {
      group->node(i)->Stop();
      break;
    }
  }
  for (int round = 0; round < 30; ++round) {
    EXPECT_TRUE(service.StatDir("/f" + std::to_string(round % 5)).ok()) << round;
  }
}

TEST(FaultToleranceTest, TafDbTransactionAbortLeavesNoPartialState) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  // Pure transactional behaviour: keep delta records out of the picture so
  // the contended mkdir cannot sidestep the conflict.
  options.tafdb.enable_delta_records = false;
  options.retry.max_attempts = 4;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/atomic").ok());
  // Force the mkdir's cross-shard transaction to abort by locking the parent
  // attribute row, then verify no orphan rows were left behind.
  auto parent_row = service.tafdb()->LocalGet(EntryKey(kRootId, "atomic"));
  ASSERT_TRUE(parent_row.has_value());
  const InodeId pid = parent_row->id;
  Shard* shard = service.tafdb()->shard_map()->Route(pid);
  ASSERT_TRUE(shard->TryLockKey(AttrKey(pid), 55555));
  OpResult blocked = service.Mkdir("/atomic/child");
  // Exhausting max_attempts surfaces the tagged kOverloaded status, with the
  // final raw abort preserved in the message.
  EXPECT_TRUE(blocked.status.IsOverloaded()) << blocked.status;
  EXPECT_NE(blocked.status.message().find("Aborted"), std::string::npos) << blocked.status;
  EXPECT_GT(blocked.retries, 0);
  // No entry row, no attr row, no IndexNode entry.
  EXPECT_FALSE(service.tafdb()->LocalGet(EntryKey(pid, "child")).has_value());
  EXPECT_TRUE(service.StatDir("/atomic/child").status.IsNotFound());
  shard->UnlockKey(AttrKey(pid), 55555);
  EXPECT_TRUE(service.Mkdir("/atomic/child").ok());
}

TEST(FaultToleranceTest, DeltaRecordsRescueContendedMkdirWhenEnabled) {
  // The same scenario with delta records available: sustained aborts flip the
  // directory into delta mode and the operation completes despite the foreign
  // lock on the attribute primary row.
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.tafdb.contention.abort_threshold = 2;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/rescued").ok());
  auto parent_row = service.tafdb()->LocalGet(EntryKey(kRootId, "rescued"));
  ASSERT_TRUE(parent_row.has_value());
  const InodeId pid = parent_row->id;
  Shard* shard = service.tafdb()->shard_map()->Route(pid);
  ASSERT_TRUE(shard->TryLockKey(AttrKey(pid), 55555));
  OpResult result = service.Mkdir("/rescued/child");
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.retries, 0);
  shard->UnlockKey(AttrKey(pid), 55555);
  service.tafdb()->CompactAllPending();
  StatResult rescued = service.StatDir("/rescued");
  ASSERT_TRUE(rescued.ok());
  EXPECT_EQ(rescued.info.child_count, 1);
}

}  // namespace
}  // namespace mantle
