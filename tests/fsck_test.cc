// Consistency audit (fsck): IndexNode access metadata and TafDB rows must
// agree after any mix of operations; injected corruption must be detected.

#include <gtest/gtest.h>

#include <memory>

#include "src/workload/namespace_gen.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    service_ = std::make_unique<MantleService>(network_.get(), FastMantleOptions());
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<MantleService> service_;
};

TEST_F(FsckTest, CleanAfterMixedOperations) {
  ASSERT_TRUE(service_->Mkdir("/a").ok());
  ASSERT_TRUE(service_->Mkdir("/a/b").ok());
  ASSERT_TRUE(service_->CreateObject("/a/b/o", 1).ok());
  ASSERT_TRUE(service_->Mkdir("/c").ok());
  ASSERT_TRUE(service_->RenameDir("/a/b", "/c/b2").ok());
  ASSERT_TRUE(service_->DeleteObject("/c/b2/o").ok());
  ASSERT_TRUE(service_->Rmdir("/c/b2").ok());
  ASSERT_TRUE(service_->Mkdir("/c/fresh").ok());

  auto report = service_->Fsck();
  EXPECT_TRUE(report.clean()) << "entry=" << report.missing_entry_row.size()
                              << " id=" << report.id_mismatch.size()
                              << " attr=" << report.missing_attr_row.size()
                              << " unindexed=" << report.unindexed_dir_row.size();
  EXPECT_EQ(report.dirs_checked, 3u);  // /a, /c, /c/fresh
  EXPECT_GT(report.rows_scanned, 0u);
}

TEST_F(FsckTest, CleanAfterBulkLoad) {
  NamespaceSpec spec;
  spec.num_dirs = 300;
  spec.num_objects = 900;
  PopulateNamespace(service_.get(), spec);
  auto report = service_->Fsck();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.dirs_checked, 300u);
}

TEST_F(FsckTest, DetectsMissingEntryRow) {
  ASSERT_TRUE(service_->Mkdir("/victim").ok());
  // Corrupt: remove the directory's entry row behind the service's back.
  auto row = service_->tafdb()->LocalGet(EntryKey(service_->index()
                                                      ->LeaderReplica()
                                                      ->table()
                                                      .root_id(),
                                                  "victim"));
  ASSERT_TRUE(row.has_value());
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.key = EntryKey(service_->index()->LeaderReplica()->table().root_id(), "victim");
  service_->tafdb()->shard_map()->Route(erase.key.pid)->ApplyOps({erase});

  auto report = service_->Fsck();
  ASSERT_EQ(report.missing_entry_row.size(), 1u);
  EXPECT_EQ(report.missing_entry_row[0], "/victim");
}

TEST_F(FsckTest, DetectsMissingAttrRow) {
  ASSERT_TRUE(service_->Mkdir("/victim").ok());
  auto entry = service_->index()->LeaderReplica()->table().Lookup(
      service_->index()->LeaderReplica()->table().root_id(), "victim");
  ASSERT_TRUE(entry.has_value());
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.key = AttrKey(entry->id);
  service_->tafdb()->shard_map()->Route(entry->id)->ApplyOps({erase});

  auto report = service_->Fsck();
  ASSERT_EQ(report.missing_attr_row.size(), 1u);
  EXPECT_EQ(report.missing_attr_row[0], "/victim");
}

TEST_F(FsckTest, DetectsUnindexedDirectoryRow) {
  ASSERT_TRUE(service_->Mkdir("/parent").ok());
  auto parent = service_->index()->LeaderReplica()->table().Lookup(
      service_->index()->LeaderReplica()->table().root_id(), "parent");
  ASSERT_TRUE(parent.has_value());
  // A directory row that never made it into the IndexNode (a crash between
  // the TafDB transaction and the Raft propose).
  service_->tafdb()->LoadPut(
      EntryKey(parent->id, "orphan"),
      MetaValue{EntryType::kDirectory, 424242, kPermAll, 0, 0, 0, 0, parent->id});

  auto report = service_->Fsck();
  ASSERT_EQ(report.unindexed_dir_row.size(), 1u);
}

TEST_F(FsckTest, DetectsIdMismatch) {
  ASSERT_TRUE(service_->Mkdir("/victim").ok());
  const InodeId root = service_->index()->LeaderReplica()->table().root_id();
  auto row = service_->tafdb()->LocalGet(EntryKey(root, "victim"));
  ASSERT_TRUE(row.has_value());
  MetaValue forged = *row;
  forged.id = 999999;  // diverges from the index
  WriteOp put;
  put.kind = WriteOp::Kind::kPut;
  put.key = EntryKey(root, "victim");
  put.value = forged;
  service_->tafdb()->shard_map()->Route(root)->ApplyOps({put});

  auto report = service_->Fsck();
  EXPECT_EQ(report.id_mismatch.size(), 1u);
  // The forged row also fails the reverse check (index holds the old id).
  EXPECT_EQ(report.unindexed_dir_row.size(), 1u);
}

TEST_F(FsckTest, SharedTafDbTenantsDoNotCrossFlag) {
  // Two namespaces over one DB: each tenant's fsck ignores the other's rows.
  service_.reset();  // the fixture's service holds the old network
  network_ = std::make_unique<Network>(FastNetworkOptions());
  TafDb shared_db(network_.get(), FastTafDbOptions());
  MantleOptions a_options = FastMantleOptions();
  a_options.namespace_name = "a";
  a_options.id_base = 1ull << 56;
  MantleService a(network_.get(), &shared_db, a_options);
  MantleOptions b_options = FastMantleOptions();
  b_options.namespace_name = "b";
  b_options.id_base = 2ull << 56;
  MantleService b(network_.get(), &shared_db, b_options);

  ASSERT_TRUE(a.Mkdir("/only-a").ok());
  ASSERT_TRUE(b.Mkdir("/only-b").ok());
  EXPECT_TRUE(a.Fsck().clean());
  EXPECT_TRUE(b.Fsck().clean());
}

}  // namespace
}  // namespace mantle
