// IndexReplica: resolution workflow of Fig. 7 (RemovalList check, cache
// probe, IndexTable walk, validated cache fill) and the rename coordination
// of Fig. 9 (lock bits, loop detection).

#include <gtest/gtest.h>

#include <memory>

#include "src/common/path.h"
#include "src/index/index_replica.h"

namespace mantle {
namespace {

class IndexReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(NetworkOptions{.zero_latency = true});
    IndexNodeOptions options;
    options.truncate_k = 3;
    options.start_invalidator = false;  // drive passes manually
    replica_ = std::make_unique<IndexReplica>(network_.get(), options);
    // /a/b/c/d/e chain with ids 2..6.
    InodeId parent = kRootId;
    InodeId id = 2;
    for (const char* name : {"a", "b", "c", "d", "e"}) {
      replica_->LoadDir(parent, name, id, kPermAll);
      parent = id++;
    }
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<IndexReplica> replica_;
};

TEST_F(IndexReplicaTest, ResolveDirWalksAllLevels) {
  auto outcome = replica_->ResolveDir(SplitPath("/a/b/c/d/e"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->dir_id, 6u);
  EXPECT_EQ(outcome->parent_id, 5u);
}

TEST_F(IndexReplicaTest, ResolveParentStopsBeforeLeaf) {
  auto outcome = replica_->ResolveParent(SplitPath("/a/b/c/obj"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->dir_id, 4u);  // /a/b/c
}

TEST_F(IndexReplicaTest, ResolveMissingComponentFails) {
  EXPECT_TRUE(replica_->ResolveDir(SplitPath("/a/zzz/c")).status().IsNotFound());
}

TEST_F(IndexReplicaTest, CacheFillsPrefixAtDepthMinusK) {
  // Depth 5, k=3 -> prefix "/a/b" cached after a miss-walk.
  ASSERT_TRUE(replica_->ResolveDir(SplitPath("/a/b/c/d/e")).ok());
  EXPECT_TRUE(replica_->cache().Lookup("/a/b").has_value());
  EXPECT_EQ(replica_->cache().Lookup("/a/b")->dir_id, 3u);
  EXPECT_TRUE(replica_->prefix_tree().Contains("/a/b"));
  // Second resolution hits the cache and walks only 3 levels.
  auto outcome = replica_->ResolveDir(SplitPath("/a/b/c/d/e"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->cache_hit);
  // 1 cache probe + the 3 leaf-side IndexTable levels.
  EXPECT_EQ(outcome->table_probes, 4);
}

TEST_F(IndexReplicaTest, ShallowPathsAreNeverCached) {
  ASSERT_TRUE(replica_->ResolveDir(SplitPath("/a/b/c")).ok());
  EXPECT_EQ(replica_->cache().Size(), 0u);
}

TEST_F(IndexReplicaTest, CacheDisabledWalksFully) {
  replica_.reset();  // the SetUp replica must go before its network
  network_ = std::make_unique<Network>(NetworkOptions{.zero_latency = true});
  IndexNodeOptions options;
  options.enable_path_cache = false;
  options.start_invalidator = false;
  replica_ = std::make_unique<IndexReplica>(network_.get(), options);
  InodeId parent = kRootId;
  InodeId id = 2;
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    replica_->LoadDir(parent, name, id, kPermAll);
    parent = id++;
  }
  auto outcome = replica_->ResolveDir(SplitPath("/a/b/c/d/e"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->table_probes, 5);
  EXPECT_EQ(replica_->cache().Size(), 0u);
}

TEST_F(IndexReplicaTest, RemovalListEntryBypassesCache) {
  ASSERT_TRUE(replica_->ResolveDir(SplitPath("/a/b/c/d/e")).ok());  // fill /a/b
  auto token = replica_->removal_list().Insert("/a");
  auto outcome = replica_->ResolveDir(SplitPath("/a/b/c/d/e"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->cache_hit);
  EXPECT_EQ(outcome->table_probes, 5);  // full walk
  replica_->removal_list().MarkDone(token);
}

TEST_F(IndexReplicaTest, CacheFillSkippedWhenRemovalListMovesDuringLookup) {
  // Simulating the timestamp-validation race is hard from outside; instead
  // verify the version counter is what fills key off: a concurrent insert
  // between snapshot and fill must reject the fill. We approximate by
  // checking that resolution during a live removal entry does not fill.
  auto token = replica_->removal_list().Insert("/unrelated-but-live");
  replica_->removal_list().MarkDone(token);
  // Entry may still be live (not yet swept): resolution of /a/... bypasses
  // only if the entry prefixes the path - "/unrelated" does not, so a fill
  // happens and that is correct behaviour.
  ASSERT_TRUE(replica_->ResolveDir(SplitPath("/a/b/c/d/e")).ok());
  EXPECT_TRUE(replica_->cache().Lookup("/a/b").has_value());
}

TEST_F(IndexReplicaTest, ApplyAddDirExtendsTree) {
  IndexCommand command;
  command.type = IndexCommandType::kAddDir;
  command.pid = 6;  // under /a/b/c/d/e
  command.name = "f";
  command.id = 7;
  command.permission = kPermAll;
  EXPECT_TRUE(DecodeApplyStatus(replica_->Apply(1, EncodeIndexCommand(command))).ok());
  EXPECT_EQ(replica_->ResolveDir(SplitPath("/a/b/c/d/e/f"))->dir_id, 7u);
}

TEST_F(IndexReplicaTest, ApplyRemoveDirPurgesExactPrefix) {
  ASSERT_TRUE(replica_->ResolveDir(SplitPath("/a/b/c/d/e")).ok());
  ASSERT_TRUE(replica_->cache().Lookup("/a/b").has_value());
  IndexCommand command;
  command.type = IndexCommandType::kRemoveDir;
  command.pid = 2;  // /a
  command.name = "b";
  command.inval_path = "/a/b";
  EXPECT_TRUE(DecodeApplyStatus(replica_->Apply(1, EncodeIndexCommand(command))).ok());
  EXPECT_FALSE(replica_->cache().Lookup("/a/b").has_value());
  EXPECT_TRUE(replica_->ResolveDir(SplitPath("/a/b")).status().IsNotFound());
}

TEST_F(IndexReplicaTest, ApplyRenameInvalidatesSubtreeViaInvalidator) {
  ASSERT_TRUE(replica_->ResolveDir(SplitPath("/a/b/c/d/e")).ok());
  ASSERT_TRUE(replica_->cache().Lookup("/a/b").has_value());
  replica_->LoadDir(kRootId, "elsewhere", 50, kPermAll);

  IndexCommand command;
  command.type = IndexCommandType::kRenameDir;
  command.pid = 2;  // /a
  command.name = "b";
  command.dst_pid = 50;
  command.dst_name = "b2";
  command.uuid = 77;
  command.inval_path = "/a/b";
  EXPECT_TRUE(DecodeApplyStatus(replica_->Apply(1, EncodeIndexCommand(command))).ok());

  // A lookup before the Invalidator pass must bypass the stale cache.
  auto stale = replica_->ResolveDir(SplitPath("/a/b/c/d/e"));
  EXPECT_TRUE(stale.status().IsNotFound());
  // And resolve correctly through the new location.
  EXPECT_TRUE(replica_->ResolveDir(SplitPath("/elsewhere/b2/c/d/e")).ok());
  // After the pass the old prefixes are physically gone.
  replica_->invalidator().RunPassNow();
  replica_->invalidator().RunPassNow();
  EXPECT_FALSE(replica_->cache().Lookup("/a/b").has_value());
  EXPECT_TRUE(replica_->removal_list().Empty());
}

TEST_F(IndexReplicaTest, RenamePrepareLocksAndDetectsLoops) {
  // Rename /a/b under its own descendant /a/b/c/d -> loop.
  auto loop = replica_->RenamePrepare(SplitPath("/a/b"), SplitPath("/a/b/c/d"), "in", 1);
  EXPECT_TRUE(loop.status().IsLoopDetected());
  EXPECT_FALSE(replica_->table().IsLocked(3));  // lock rolled back

  replica_->LoadDir(kRootId, "target", 60, kPermAll);
  auto prepared = replica_->RenamePrepare(SplitPath("/a/b"), SplitPath("/target"), "moved", 2);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->src_id, 3u);
  EXPECT_EQ(prepared->dst_pid, 60u);
  EXPECT_TRUE(replica_->table().IsLocked(3));
  // A competing rename of the same source aborts with Busy.
  auto competing =
      replica_->RenamePrepare(SplitPath("/a/b"), SplitPath("/target"), "other", 3);
  EXPECT_TRUE(competing.status().IsBusy());
  // Same uuid (proxy failover) re-acquires.
  auto retry = replica_->RenamePrepare(SplitPath("/a/b"), SplitPath("/target"), "moved", 2);
  EXPECT_TRUE(retry.ok());
  replica_->RenameAbort(3, 2);
  EXPECT_FALSE(replica_->table().IsLocked(3));
}

TEST_F(IndexReplicaTest, RenamePrepareChecksDestinationLocks) {
  replica_->LoadDir(kRootId, "t1", 60, kPermAll);
  replica_->LoadDir(kRootId, "t2", 61, kPermAll);
  replica_->LoadDir(61, "inner", 62, kPermAll);
  // A foreign rename holds /t2 (an ancestor of the destination parent).
  ASSERT_TRUE(replica_->table().TryLockDir(61, 999));
  auto prepared =
      replica_->RenamePrepare(SplitPath("/t1"), SplitPath("/t2/inner"), "moved", 5);
  EXPECT_TRUE(prepared.status().IsBusy());
  EXPECT_FALSE(replica_->table().IsLocked(60));
}

TEST_F(IndexReplicaTest, RenamePrepareRejectsExistingDestination) {
  replica_->LoadDir(kRootId, "t", 60, kPermAll);
  replica_->LoadDir(60, "taken", 61, kPermAll);
  auto prepared = replica_->RenamePrepare(SplitPath("/a/b"), SplitPath("/t"), "taken", 6);
  EXPECT_TRUE(prepared.status().IsAlreadyExists());
}

TEST_F(IndexReplicaTest, CommandCodecRoundTrips) {
  IndexCommand command;
  command.type = IndexCommandType::kRenameDir;
  command.pid = 42;
  command.name = "source-name";
  command.id = 77;
  command.permission = kPermRead | kPermTraverse;
  command.dst_pid = 99;
  command.dst_name = "destination";
  command.uuid = 123456789;
  command.inval_path = "/deep/path/with/levels";
  auto decoded = DecodeIndexCommand(EncodeIndexCommand(command));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->pid, command.pid);
  EXPECT_EQ(decoded->name, command.name);
  EXPECT_EQ(decoded->id, command.id);
  EXPECT_EQ(decoded->permission, command.permission);
  EXPECT_EQ(decoded->dst_pid, command.dst_pid);
  EXPECT_EQ(decoded->dst_name, command.dst_name);
  EXPECT_EQ(decoded->uuid, command.uuid);
  EXPECT_EQ(decoded->inval_path, command.inval_path);
}

TEST_F(IndexReplicaTest, CommandCodecRejectsGarbage) {
  EXPECT_FALSE(DecodeIndexCommand("").ok());
  EXPECT_FALSE(DecodeIndexCommand("\x01garbage").ok());
}

TEST_F(IndexReplicaTest, ApplyStatusCodecRoundTrips) {
  EXPECT_TRUE(DecodeApplyStatus(EncodeApplyStatus(Status::Ok())).ok());
  Status error = DecodeApplyStatus(EncodeApplyStatus(Status::NotFound("xyz")));
  EXPECT_TRUE(error.IsNotFound());
  EXPECT_EQ(error.message(), "xyz");
}

TEST_F(IndexReplicaTest, PermissionMaskIntersectsAlongPath) {
  replica_->LoadDir(kRootId, "open", 70, kPermAll);
  replica_->LoadDir(70, "narrow", 71, kPermRead | kPermTraverse);
  replica_->LoadDir(71, "leafdir", 72, kPermAll);
  auto outcome = replica_->ResolveDir(SplitPath("/open/narrow/leafdir"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->perm_mask & kPermWrite, 0u);
}

TEST_F(IndexReplicaTest, NoTraverseBitDeniesResolution) {
  replica_->LoadDir(kRootId, "sealed", 80, kPermRead);  // no traverse
  replica_->LoadDir(80, "inside", 81, kPermAll);
  EXPECT_EQ(replica_->ResolveDir(SplitPath("/sealed/inside")).status().code(),
            StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace mantle
