// IndexService: replicated IndexNode behaviour - consistency across replicas,
// follower reads, and the single-RPC lookup property.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/path.h"
#include "src/index/index_service.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

class IndexServiceTest : public ::testing::Test {
 protected:
  void Build(bool follower_read, uint32_t learners = 0) {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    IndexServiceOptions options;
    options.num_voters = 3;
    options.num_learners = learners;
    options.follower_read = follower_read;
    options.offload_queue_threshold = 0;  // always willing to offload in tests
    options.raft = FastRaftOptions();
    options.node.start_invalidator = true;
    options.node.invalidator_interval_nanos = 200'000;
    service_ = std::make_unique<IndexService>(network_.get(), "idx", options);
    service_->Start();
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<IndexService> service_;
};

TEST_F(IndexServiceTest, AddDirReplicatesToAllReplicas) {
  Build(false);
  ASSERT_TRUE(service_->AddDir(kRootId, "a", 2, kPermAll).ok());
  ASSERT_TRUE(service_->AddDir(2, "b", 3, kPermAll).ok());
  for (uint32_t i = 0; i < service_->num_replicas(); ++i) {
    // Replication is synchronous for the proposer; followers may apply a hair
    // later - wait for convergence.
    const int64_t deadline = MonotonicNanos() + 2'000'000'000;
    while (MonotonicNanos() < deadline &&
           !service_->replica(i)->table().Lookup(2, "b").has_value()) {
      PreciseSleep(1'000'000);
    }
    EXPECT_TRUE(service_->replica(i)->table().Lookup(2, "b").has_value()) << i;
  }
}

TEST_F(IndexServiceTest, LookupResolvesThroughLeader) {
  Build(false);
  ASSERT_TRUE(service_->AddDir(kRootId, "a", 2, kPermAll).ok());
  ASSERT_TRUE(service_->AddDir(2, "b", 3, kPermAll).ok());
  auto outcome = service_->LookupDir(SplitPath("/a/b"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->dir_id, 3u);
}

TEST_F(IndexServiceTest, FollowerReadsObserveOwnWrites) {
  Build(true, /*learners=*/1);
  // Every write followed by a read that may land on any replica: the
  // ReadIndex fence guarantees read-your-write.
  InodeId parent = kRootId;
  for (InodeId id = 2; id < 30; ++id) {
    const std::string name = "d" + std::to_string(id);
    ASSERT_TRUE(service_->AddDir(parent, name, id, kPermAll).ok());
    std::vector<std::string> components;
    IndexReplica* leader = service_->LeaderReplica();
    ASSERT_NE(leader, nullptr);
    auto path = leader->table().PathOf(id);
    ASSERT_TRUE(path.has_value());
    auto outcome = service_->LookupDir(SplitPath(*path));
    ASSERT_TRUE(outcome.ok()) << *path << " " << outcome.status();
    EXPECT_EQ(outcome->dir_id, id);
    parent = id;
  }
}

TEST_F(IndexServiceTest, RemoveDirReplicates) {
  Build(false);
  ASSERT_TRUE(service_->AddDir(kRootId, "gone", 2, kPermAll).ok());
  ASSERT_TRUE(service_->RemoveDir(kRootId, "gone", "/gone").ok());
  EXPECT_TRUE(service_->LookupDir(SplitPath("/gone")).status().IsNotFound());
  EXPECT_TRUE(service_->RemoveDir(kRootId, "gone", "/gone").IsNotFound());
}

TEST_F(IndexServiceTest, RenameWorkflowEndToEnd) {
  Build(false);
  ASSERT_TRUE(service_->AddDir(kRootId, "src", 2, kPermAll).ok());
  ASSERT_TRUE(service_->AddDir(2, "inner", 3, kPermAll).ok());
  ASSERT_TRUE(service_->AddDir(kRootId, "dst", 4, kPermAll).ok());

  // Invalid coordination requests are rejected outright.
  EXPECT_EQ(service_->RenamePrepare(SplitPath("/src"), SplitPath("/"), "", 0).status().code(),
            StatusCode::kInvalidArgument);
  auto prepared = service_->RenamePrepare(SplitPath("/src"), SplitPath("/dst"), "moved", 11);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(service_
                  ->RenameCommit(prepared->src_pid, "src", prepared->dst_pid, "moved", 11,
                                 prepared->src_path)
                  .ok());
  EXPECT_TRUE(service_->LookupDir(SplitPath("/dst/moved/inner")).ok());
  EXPECT_TRUE(service_->LookupDir(SplitPath("/src")).status().IsNotFound());
  // Lock released by the apply.
  IndexReplica* leader = service_->LeaderReplica();
  EXPECT_FALSE(leader->table().IsLocked(2));
}

TEST_F(IndexServiceTest, RenameAbortReleasesLock) {
  Build(false);
  ASSERT_TRUE(service_->AddDir(kRootId, "src", 2, kPermAll).ok());
  ASSERT_TRUE(service_->AddDir(kRootId, "dst", 3, kPermAll).ok());
  auto prepared = service_->RenamePrepare(SplitPath("/src"), SplitPath("/dst"), "m", 21);
  ASSERT_TRUE(prepared.ok());
  service_->RenameAbort(prepared->src_id, 21);
  EXPECT_FALSE(service_->LeaderReplica()->table().IsLocked(2));
  // Another rename can now proceed.
  auto again = service_->RenamePrepare(SplitPath("/src"), SplitPath("/dst"), "m", 22);
  EXPECT_TRUE(again.ok());
  service_->RenameAbort(again->src_id, 22);
}

TEST_F(IndexServiceTest, SetPermissionReplicatesAndInvalidates) {
  Build(false);
  InodeId parent = kRootId;
  for (InodeId id = 2; id <= 7; ++id) {
    ASSERT_TRUE(service_->AddDir(parent, "p" + std::to_string(id), id, kPermAll).ok());
    parent = id;
  }
  const std::string deep = "/p2/p3/p4/p5/p6/p7";
  ASSERT_TRUE(service_->LookupDir(SplitPath(deep)).ok());  // warms cache
  ASSERT_TRUE(service_->SetPermission(kRootId, "p2", kPermRead, "/p2").ok());
  auto outcome = service_->LookupDir(SplitPath(deep));
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(IndexServiceTest, LookupIsSingleRpcLeaderRead) {
  Build(false);
  InodeId parent = kRootId;
  for (InodeId id = 2; id <= 11; ++id) {
    ASSERT_TRUE(service_->AddDir(parent, "n" + std::to_string(id), id, kPermAll).ok());
    parent = id;
  }
  ScopedRpcCounter counter;
  auto outcome = service_->LookupDir(
      SplitPath("/n2/n3/n4/n5/n6/n7/n8/n9/n10/n11"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(counter.count(), 1);
}

}  // namespace
}  // namespace mantle
