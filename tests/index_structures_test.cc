// Unit tests for the IndexNode data structures: IndexTable, RemovalList,
// PrefixTree, TopDirPathCache, and the Invalidator that ties them together.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/common/clock.h"
#include "src/index/index_table.h"
#include "src/index/invalidator.h"
#include "src/index/prefix_tree.h"
#include "src/index/removal_list.h"
#include "src/index/top_dir_path_cache.h"

namespace mantle {
namespace {

// --- IndexTable ---------------------------------------------------------------

TEST(IndexTableTest, InsertLookupRemove) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "a", 2, kPermAll).ok());
  auto entry = table.Lookup(kRootId, "a");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->id, 2u);
  EXPECT_TRUE(table.Insert(kRootId, "a", 3, kPermAll).IsAlreadyExists());
  EXPECT_TRUE(table.Remove(kRootId, "a").ok());
  EXPECT_FALSE(table.Lookup(kRootId, "a").has_value());
  EXPECT_TRUE(table.Remove(kRootId, "a").IsNotFound());
}

TEST(IndexTableTest, PathReconstruction) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "a", 2, kPermAll).ok());
  ASSERT_TRUE(table.Insert(2, "b", 3, kPermAll).ok());
  ASSERT_TRUE(table.Insert(3, "c", 4, kPermAll).ok());
  EXPECT_EQ(table.PathOf(4).value(), "/a/b/c");
  EXPECT_EQ(table.PathOf(kRootId).value(), "/");
  EXPECT_FALSE(table.PathOf(99).has_value());
}

TEST(IndexTableTest, AncestorQueries) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "a", 2, kPermAll).ok());
  ASSERT_TRUE(table.Insert(2, "b", 3, kPermAll).ok());
  EXPECT_TRUE(table.IsSelfOrAncestor(2, 3));
  EXPECT_TRUE(table.IsSelfOrAncestor(3, 3));
  EXPECT_TRUE(table.IsSelfOrAncestor(kRootId, 3));
  EXPECT_FALSE(table.IsSelfOrAncestor(3, 2));
  auto chain = table.AncestorChain(3);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], 3u);
  EXPECT_EQ(chain[2], kRootId);
}

TEST(IndexTableTest, RenameMovesEntryAndReverseLink) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "src", 2, kPermAll).ok());
  ASSERT_TRUE(table.Insert(kRootId, "dstdir", 3, kPermAll).ok());
  ASSERT_TRUE(table.Rename(kRootId, "src", 3, "moved").ok());
  EXPECT_FALSE(table.Lookup(kRootId, "src").has_value());
  EXPECT_EQ(table.Lookup(3, "moved")->id, 2u);
  EXPECT_EQ(table.PathOf(2).value(), "/dstdir/moved");
}

TEST(IndexTableTest, RenameRejectsBadEndpoints) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "a", 2, kPermAll).ok());
  ASSERT_TRUE(table.Insert(kRootId, "b", 3, kPermAll).ok());
  EXPECT_TRUE(table.Rename(kRootId, "missing", kRootId, "x").IsNotFound());
  EXPECT_TRUE(table.Rename(kRootId, "a", kRootId, "b").IsAlreadyExists());
}

TEST(IndexTableTest, RenameLockBits) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "d", 2, kPermAll).ok());
  EXPECT_TRUE(table.TryLockDir(2, 111));
  EXPECT_TRUE(table.TryLockDir(2, 111));   // same uuid (proxy retry)
  EXPECT_FALSE(table.TryLockDir(2, 222));  // foreign uuid
  EXPECT_EQ(table.LockOwner(2), 111u);
  table.UnlockDir(2, 222);  // wrong owner ignored
  EXPECT_TRUE(table.IsLocked(2));
  table.UnlockDir(2, 111);
  EXPECT_FALSE(table.IsLocked(2));
}

TEST(IndexTableTest, RemoveClearsLock) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "d", 2, kPermAll).ok());
  ASSERT_TRUE(table.TryLockDir(2, 9));
  ASSERT_TRUE(table.Remove(kRootId, "d").ok());
  EXPECT_FALSE(table.IsLocked(2));
}

TEST(IndexTableTest, RenameClearsLockAutomatically) {
  // "The rename lock is automatically released when the access metadata of
  // the source directory is deleted in IndexTable" (paper §5.2.2).
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "d", 2, kPermAll).ok());
  ASSERT_TRUE(table.TryLockDir(2, 9));
  ASSERT_TRUE(table.Rename(kRootId, "d", kRootId, "d2").ok());
  EXPECT_FALSE(table.IsLocked(2));
}

TEST(IndexTableTest, SetPermissionUpdatesBothMaps) {
  IndexTable table;
  ASSERT_TRUE(table.Insert(kRootId, "d", 2, kPermAll).ok());
  ASSERT_TRUE(table.SetPermission(kRootId, "d", kPermRead).ok());
  EXPECT_EQ(table.Lookup(kRootId, "d")->permission, kPermRead);
  EXPECT_EQ(table.GetParent(2)->permission, kPermRead);
}

TEST(IndexTableTest, ConcurrentLookupsDuringMutation) {
  IndexTable table;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(kRootId, "d" + std::to_string(i), 10u + i, kPermAll).ok());
  }
  std::atomic<bool> stop{false};
  std::thread mutator([&]() {
    for (int round = 0; round < 50; ++round) {
      table.Insert(kRootId, "new" + std::to_string(round), 1000u + round, kPermAll);
      table.Remove(kRootId, "new" + std::to_string(round));
    }
    stop.store(true);
  });
  while (!stop.load()) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(table.Lookup(kRootId, "d" + std::to_string(i)).has_value());
    }
  }
  mutator.join();
}

// --- RemovalList -----------------------------------------------------------------

TEST(RemovalListTest, EmptyByDefault) {
  RemovalList list;
  EXPECT_TRUE(list.Empty());
  EXPECT_FALSE(list.ContainsPrefixOf("/a/b/c"));
  EXPECT_EQ(list.LiveCount(), 0u);
}

TEST(RemovalListTest, PrefixSemantics) {
  RemovalList list;
  list.Insert("/a/b");
  EXPECT_TRUE(list.ContainsPrefixOf("/a/b"));
  EXPECT_TRUE(list.ContainsPrefixOf("/a/b/c/d"));
  EXPECT_FALSE(list.ContainsPrefixOf("/a/bc"));
  EXPECT_FALSE(list.ContainsPrefixOf("/a"));
  EXPECT_FALSE(list.Empty());
}

TEST(RemovalListTest, VersionBumpsOnInsert) {
  RemovalList list;
  const uint64_t v0 = list.version();
  list.Insert("/x");
  EXPECT_GT(list.version(), v0);
}

TEST(RemovalListTest, MaintenancePurgesOnceAndRetiresDone) {
  RemovalList list;
  auto token = list.Insert("/spark/out");
  int purges = 0;
  list.RunMaintenancePass([&purges](const std::string& path) {
    EXPECT_EQ(path, "/spark/out");
    ++purges;
  });
  EXPECT_EQ(purges, 1);
  // Entry purged but not done: stays live (still shields lookups).
  EXPECT_TRUE(list.ContainsPrefixOf("/spark/out/tmp"));
  list.RunMaintenancePass([&purges](const std::string&) { ++purges; });
  EXPECT_EQ(purges, 1);  // never re-purged

  list.MarkDone(token);
  list.RunMaintenancePass([&purges](const std::string&) { ++purges; });
  EXPECT_FALSE(list.ContainsPrefixOf("/spark/out/tmp"));
  EXPECT_TRUE(list.Empty());
  EXPECT_EQ(list.stats().removals, 1u);
}

TEST(RemovalListTest, NodesReclaimAtQuiescence) {
  RemovalList list;
  for (int i = 0; i < 32; ++i) {
    auto token = list.Insert("/dir" + std::to_string(i));
    list.MarkDone(token);
  }
  list.RunMaintenancePass([](const std::string&) {});  // purge all
  list.RunMaintenancePass([](const std::string&) {});  // retire all
  // One more pass with no readers active frees the retirees.
  list.RunMaintenancePass([](const std::string&) {});
  EXPECT_EQ(list.stats().reclaimed, 32u);
}

TEST(RemovalListTest, ConcurrentInsertScanRemove) {
  RemovalList list;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};

  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        list.ContainsPrefixOf("/w2/deep/path/leaf");
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < 500; ++i) {
        auto token = list.Insert("/w" + std::to_string(t) + "/" + std::to_string(i));
        list.MarkDone(token);
      }
    });
  }
  // The single Invalidator thread (here: this thread) retires continuously.
  for (int pass = 0; pass < 200; ++pass) {
    list.RunMaintenancePass([](const std::string&) {});
  }
  for (auto& writer : writers) {
    writer.join();
  }
  // Drain what remains.
  for (int pass = 0; pass < 10; ++pass) {
    list.RunMaintenancePass([](const std::string&) {});
  }
  stop.store(true, std::memory_order_release);
  for (auto& scanner : scanners) {
    scanner.join();
  }
  EXPECT_TRUE(list.Empty());
  EXPECT_EQ(list.stats().inserts, 1500u);
  EXPECT_EQ(list.stats().removals, 1500u);
  EXPECT_GT(scans.load(), 0u);
}

// --- PrefixTree -------------------------------------------------------------------

TEST(PrefixTreeTest, InsertContains) {
  PrefixTree tree;
  tree.Insert("/a/b");
  EXPECT_TRUE(tree.Contains("/a/b"));
  EXPECT_FALSE(tree.Contains("/a"));
  EXPECT_FALSE(tree.Contains("/a/b/c"));
  EXPECT_EQ(tree.Size(), 1u);
  tree.Insert("/a/b");  // idempotent
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(PrefixTreeTest, RemoveSubtreeCollectsDescendants) {
  PrefixTree tree;
  tree.Insert("/a");
  tree.Insert("/a/b");
  tree.Insert("/a/b/c");
  tree.Insert("/a/x");
  tree.Insert("/other");
  auto removed = tree.RemoveSubtree("/a/b");
  std::set<std::string> removed_set(removed.begin(), removed.end());
  EXPECT_EQ(removed_set, (std::set<std::string>{"/a/b", "/a/b/c"}));
  EXPECT_TRUE(tree.Contains("/a"));
  EXPECT_TRUE(tree.Contains("/a/x"));
  EXPECT_TRUE(tree.Contains("/other"));
  EXPECT_EQ(tree.Size(), 3u);
}

TEST(PrefixTreeTest, RemoveSubtreeOfUnknownPathIsEmpty) {
  PrefixTree tree;
  tree.Insert("/a");
  EXPECT_TRUE(tree.RemoveSubtree("/zzz").empty());
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(PrefixTreeTest, CollectWithoutRemoval) {
  PrefixTree tree;
  tree.Insert("/p/q");
  tree.Insert("/p/q/r");
  auto collected = tree.CollectSubtree("/p");
  EXPECT_EQ(collected.size(), 2u);
  EXPECT_EQ(tree.Size(), 2u);
}

TEST(PrefixTreeTest, ExactRemove) {
  PrefixTree tree;
  tree.Insert("/a/b");
  tree.Insert("/a/b/c");
  tree.Remove("/a/b");
  EXPECT_FALSE(tree.Contains("/a/b"));
  EXPECT_TRUE(tree.Contains("/a/b/c"));
}

// --- TopDirPathCache ----------------------------------------------------------------

TEST(TopDirPathCacheTest, InsertLookupErase) {
  TopDirPathCache cache;
  EXPECT_FALSE(cache.Lookup("/a/b").has_value());
  EXPECT_TRUE(cache.TryInsert("/a/b", PathCacheEntry{7, kPermRead}));
  auto hit = cache.Lookup("/a/b");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dir_id, 7u);
  EXPECT_EQ(hit->permission_mask, kPermRead);
  EXPECT_FALSE(cache.TryInsert("/a/b", PathCacheEntry{8, kPermAll}));  // no overwrite
  cache.Erase("/a/b");
  EXPECT_FALSE(cache.Lookup("/a/b").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(TopDirPathCacheTest, CapacityRejectsWhenFull) {
  TopDirPathCache cache(2);
  EXPECT_TRUE(cache.TryInsert("/p1", PathCacheEntry{1, kPermAll}));
  EXPECT_TRUE(cache.TryInsert("/p2", PathCacheEntry{2, kPermAll}));
  EXPECT_FALSE(cache.TryInsert("/p3", PathCacheEntry{3, kPermAll}));
  EXPECT_EQ(cache.stats().rejected_full, 1u);
  cache.Erase("/p1");
  EXPECT_TRUE(cache.TryInsert("/p3", PathCacheEntry{3, kPermAll}));
}

TEST(TopDirPathCacheTest, MemoryAccountingTracksEntries) {
  TopDirPathCache cache;
  EXPECT_EQ(cache.MemoryBytes(), 0u);
  cache.TryInsert("/some/prefix/path", PathCacheEntry{1, kPermAll});
  const size_t with_one = cache.MemoryBytes();
  EXPECT_GT(with_one, 0u);
  cache.Erase("/some/prefix/path");
  EXPECT_EQ(cache.MemoryBytes(), 0u);
}

TEST(TopDirPathCacheTest, HitMissCounters) {
  TopDirPathCache cache;
  cache.TryInsert("/x", PathCacheEntry{1, kPermAll});
  cache.Lookup("/x");
  cache.Lookup("/y");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// --- Invalidator --------------------------------------------------------------------

TEST(InvalidatorTest, PurgesCacheSubtreeForRemovalEntries) {
  RemovalList list;
  PrefixTree tree;
  TopDirPathCache cache;
  Invalidator invalidator(&list, &tree, &cache, 1'000'000, /*start_thread=*/false);

  cache.TryInsert("/a/b", PathCacheEntry{2, kPermAll});
  tree.Insert("/a/b");
  cache.TryInsert("/a/b/c", PathCacheEntry{3, kPermAll});
  tree.Insert("/a/b/c");
  cache.TryInsert("/z", PathCacheEntry{9, kPermAll});
  tree.Insert("/z");

  auto token = list.Insert("/a/b");
  list.MarkDone(token);
  invalidator.RunPassNow();

  EXPECT_FALSE(cache.Lookup("/a/b").has_value());
  EXPECT_FALSE(cache.Lookup("/a/b/c").has_value());
  EXPECT_TRUE(cache.Lookup("/z").has_value());
  EXPECT_EQ(invalidator.prefixes_invalidated(), 2u);
  invalidator.RunPassNow();
  EXPECT_TRUE(list.Empty());
}

TEST(InvalidatorTest, BackgroundThreadDrains) {
  RemovalList list;
  PrefixTree tree;
  TopDirPathCache cache;
  Invalidator invalidator(&list, &tree, &cache, 200'000, /*start_thread=*/true);
  cache.TryInsert("/hot", PathCacheEntry{2, kPermAll});
  tree.Insert("/hot");
  auto token = list.Insert("/hot");
  list.MarkDone(token);
  const int64_t deadline = MonotonicNanos() + 2'000'000'000;
  while (cache.Lookup("/hot").has_value() && MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(cache.Lookup("/hot").has_value());
}

}  // namespace
}  // namespace mantle
