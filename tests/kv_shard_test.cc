#include <gtest/gtest.h>

#include <thread>

#include "src/kv/shard.h"

namespace mantle {
namespace {

MetaValue DirValue(InodeId id) { return MetaValue{EntryType::kDirectory, id, kPermAll, 0, 0, 0, 0, 0}; }
MetaValue ObjValue(InodeId id, uint64_t size) {
  return MetaValue{EntryType::kObject, id, kPermAll, size, 0, 0, 0, 0};
}

TEST(MetaKeyTest, OrderingIsPidNameTs) {
  EXPECT_LT((MetaKey{1, "a", 0}), (MetaKey{1, "b", 0}));
  EXPECT_LT((MetaKey{1, "b", 0}), (MetaKey{2, "a", 0}));
  EXPECT_LT((MetaKey{1, "a", 0}), (MetaKey{1, "a", 5}));
}

TEST(MetaKeyTest, AttrNameCannotCollideWithChildNames) {
  // '/' never appears inside a component, so "/_ATTR" is reserved.
  EXPECT_EQ(kAttrName.find('/'), 0u);
}

TEST(ShardTest, PutGetDelete) {
  Shard shard(0);
  shard.LoadPut(EntryKey(1, "a"), ObjValue(10, 100));
  auto row = shard.Get(EntryKey(1, "a"));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->id, 10u);
  WriteOp erase;
  erase.kind = WriteOp::Kind::kDelete;
  erase.key = EntryKey(1, "a");
  shard.ApplyOps({erase});
  EXPECT_FALSE(shard.Get(EntryKey(1, "a")).has_value());
}

TEST(ShardTest, ScanChildrenSkipsAttrRows) {
  Shard shard(0);
  shard.LoadPut(AttrKey(1), DirValue(1));
  shard.LoadPut(EntryKey(1, "x"), ObjValue(2, 1));
  shard.LoadPut(EntryKey(1, "y"), ObjValue(3, 1));
  shard.LoadPut(EntryKey(2, "z"), ObjValue(4, 1));
  auto children = shard.ScanChildren(1);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].key.name, "x");
  EXPECT_EQ(children[1].key.name, "y");
}

TEST(ShardTest, ScanChildrenHonorsLimit) {
  Shard shard(0);
  for (int i = 0; i < 10; ++i) {
    shard.LoadPut(EntryKey(1, "c" + std::to_string(i)), ObjValue(10 + i, 1));
  }
  EXPECT_EQ(shard.ScanChildren(1, 3).size(), 3u);
}

TEST(ShardTest, HasChildrenIgnoresAttrRows) {
  Shard shard(0);
  shard.LoadPut(AttrKey(7), DirValue(7));
  EXPECT_FALSE(shard.HasChildren(7));
  shard.LoadPut(EntryKey(7, "kid"), ObjValue(8, 1));
  EXPECT_TRUE(shard.HasChildren(7));
}

TEST(ShardTest, KeyLocksConflictAcrossTxns) {
  Shard shard(0);
  EXPECT_TRUE(shard.TryLockKey(EntryKey(1, "a"), 100));
  EXPECT_TRUE(shard.TryLockKey(EntryKey(1, "a"), 100));  // re-entrant
  EXPECT_FALSE(shard.TryLockKey(EntryKey(1, "a"), 200));
  EXPECT_EQ(shard.lock_conflicts(), 1u);
  shard.UnlockKey(EntryKey(1, "a"), 200);  // wrong owner: no-op
  EXPECT_FALSE(shard.TryLockKey(EntryKey(1, "a"), 200));
  shard.UnlockKey(EntryKey(1, "a"), 100);
  EXPECT_TRUE(shard.TryLockKey(EntryKey(1, "a"), 200));
}

TEST(ShardTest, PreconditionsValidate) {
  Shard shard(0);
  shard.LoadPut(EntryKey(1, "exists"), ObjValue(2, 1));
  WriteOp must_exist;
  must_exist.expect = WriteOp::Expect::kMustExist;
  must_exist.key = EntryKey(1, "exists");
  EXPECT_TRUE(shard.CheckPrecondition(must_exist).ok());
  must_exist.key = EntryKey(1, "missing");
  EXPECT_TRUE(shard.CheckPrecondition(must_exist).IsNotFound());
  WriteOp must_not;
  must_not.expect = WriteOp::Expect::kMustNotExist;
  must_not.key = EntryKey(1, "exists");
  EXPECT_TRUE(shard.CheckPrecondition(must_not).IsAlreadyExists());
}

TEST(ShardTest, AddChildCountCreatesAndAccumulates) {
  Shard shard(0);
  WriteOp add;
  add.kind = WriteOp::Kind::kAddChildCount;
  add.key = AttrKey(5);
  add.count_delta = 3;
  add.bump_mtime = true;
  shard.ApplyOps({add});
  add.count_delta = -1;
  shard.ApplyOps({add});
  auto row = shard.Get(AttrKey(5));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->child_count, 2);
  EXPECT_EQ(row->mtime, 2u);
  EXPECT_EQ(row->type, EntryType::kAttrPrimary);
}

TEST(ShardTest, VersionBumpsOnOverwrite) {
  Shard shard(0);
  WriteOp put;
  put.kind = WriteOp::Kind::kPut;
  put.key = EntryKey(1, "v");
  put.value = ObjValue(2, 1);
  shard.ApplyOps({put});
  shard.ApplyOps({put});
  EXPECT_EQ(shard.Get(EntryKey(1, "v"))->version, 2u);
}

TEST(ShardTest, CheckAndApplyIsAtomic) {
  Shard shard(0);
  shard.LoadPut(EntryKey(1, "taken"), ObjValue(2, 1));
  WriteOp good;
  good.kind = WriteOp::Kind::kPut;
  good.expect = WriteOp::Expect::kMustNotExist;
  good.key = EntryKey(1, "fresh");
  good.value = ObjValue(3, 1);
  WriteOp bad;
  bad.kind = WriteOp::Kind::kPut;
  bad.expect = WriteOp::Expect::kMustNotExist;
  bad.key = EntryKey(1, "taken");
  bad.value = ObjValue(4, 1);
  EXPECT_TRUE(shard.CheckAndApply({good, bad}).IsAlreadyExists());
  // Nothing applied: atomicity.
  EXPECT_FALSE(shard.Get(EntryKey(1, "fresh")).has_value());
}

TEST(ShardTest, DeltaRowsScanAndMerge) {
  Shard shard(0);
  shard.LoadPut(AttrKey(9), [] {
    MetaValue v = DirValue(9);
    v.type = EntryType::kAttrPrimary;
    v.child_count = 5;
    return v;
  }());
  for (uint64_t ts = 1; ts <= 3; ++ts) {
    MetaValue delta;
    delta.type = EntryType::kAttrDelta;
    delta.child_count = 1;
    delta.mtime = ts * 10;
    shard.LoadPut(DeltaKey(9, ts), delta);
  }
  EXPECT_EQ(shard.ScanDeltas(9).size(), 3u);
  auto merged = shard.ReadAttrMerged(9);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->child_count, 8);
  EXPECT_EQ(merged->mtime, 30u);
}

TEST(ShardTest, CompactDeltasFoldsIntoPrimary) {
  Shard shard(0);
  shard.LoadPut(AttrKey(9), [] {
    MetaValue v = DirValue(9);
    v.type = EntryType::kAttrPrimary;
    v.child_count = 5;
    return v;
  }());
  MetaValue delta;
  delta.type = EntryType::kAttrDelta;
  delta.child_count = 2;
  delta.mtime = 77;
  shard.LoadPut(DeltaKey(9, 1), delta);
  shard.LoadPut(DeltaKey(9, 2), delta);
  shard.CompactDeltas(9, {1, 2}, 4, 77);
  EXPECT_TRUE(shard.ScanDeltas(9).empty());
  auto primary = shard.Get(AttrKey(9));
  EXPECT_EQ(primary->child_count, 9);
  EXPECT_EQ(primary->mtime, 77u);
}

TEST(ShardTest, CompactDeltasToleratesMissingPrimary) {
  Shard shard(0);
  MetaValue delta;
  delta.type = EntryType::kAttrDelta;
  delta.child_count = 1;
  shard.LoadPut(DeltaKey(4, 1), delta);
  shard.CompactDeltas(4, {1}, 1, 0);  // primary never existed (rmdir raced)
  EXPECT_TRUE(shard.ScanDeltas(4).empty());
}

TEST(ShardTest, CompactConsumesOnlyListedDeltas) {
  Shard shard(0);
  shard.LoadPut(AttrKey(9), [] {
    MetaValue v = DirValue(9);
    v.type = EntryType::kAttrPrimary;
    return v;
  }());
  MetaValue delta;
  delta.type = EntryType::kAttrDelta;
  delta.child_count = 1;
  shard.LoadPut(DeltaKey(9, 1), delta);
  shard.LoadPut(DeltaKey(9, 2), delta);  // arrives after the scan
  shard.CompactDeltas(9, {1}, 1, 0);
  auto remaining = shard.ScanDeltas(9);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].key.ts, 2u);
  // The merged view stays exact either way.
  EXPECT_EQ(shard.ReadAttrMerged(9)->child_count, 2);
}

TEST(ShardTest, RowAccountingUnderConcurrentInsertDeleteScan) {
  // Size(), ops() and ScanRange must stay coherent while inserters, deleters
  // and scanners race: the heat tracker and the migration copy path both read
  // these counters off a live shard.
  Shard shard(0);
  constexpr int kThreads = 4;
  constexpr int kRowsPerThread = 500;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shard, t]() {
      const InodeId pid = 10 + t;
      // Insert every row, then delete the odd ones via the atomic path.
      for (int i = 0; i < kRowsPerThread; ++i) {
        WriteOp put;
        put.kind = WriteOp::Kind::kPut;
        put.key = EntryKey(pid, "r" + std::to_string(i));
        put.value = ObjValue(1000 + i, i);
        ASSERT_TRUE(shard.CheckAndApply({put}).ok());
      }
      for (int i = 1; i < kRowsPerThread; i += 2) {
        WriteOp erase;
        erase.kind = WriteOp::Kind::kDelete;
        erase.key = EntryKey(pid, "r" + std::to_string(i));
        ASSERT_TRUE(shard.CheckAndApply({erase}).ok());
      }
    });
  }
  // Scanners race the mutators; any snapshot they observe must be bounded by
  // the total row budget and internally consistent (page keys ascend).
  for (int round = 0; round < 50; ++round) {
    MetaKey after{};
    size_t seen = 0;
    while (true) {
      const auto page = shard.ScanRange(after, 64);
      if (page.empty()) {
        break;
      }
      for (const auto& entry : page) {
        EXPECT_LT(after, entry.key);
        after = entry.key;
      }
      seen += page.size();
    }
    EXPECT_LE(seen, static_cast<size_t>(kThreads) * kRowsPerThread);
  }
  for (auto& w : workers) {
    w.join();
  }

  // Exactly the even rows survive, and every accessor agrees on the count.
  const size_t expected = static_cast<size_t>(kThreads) * ((kRowsPerThread + 1) / 2);
  EXPECT_EQ(shard.Size(), expected);
  size_t via_scan = 0;
  MetaKey after{};
  while (true) {
    const auto page = shard.ScanRange(after, 100);
    if (page.empty()) {
      break;
    }
    after = page.back().key;
    via_scan += page.size();
  }
  EXPECT_EQ(via_scan, expected);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(shard.ScanChildren(10 + t).size(), (kRowsPerThread + 1) / 2);
  }
  // The cumulative op counter saw at least every mutation.
  EXPECT_GE(shard.ops(), static_cast<uint64_t>(kThreads) * (kRowsPerThread + kRowsPerThread / 2));
}

TEST(ShardTest, ConcurrentLoadAndScan) {
  Shard shard(0);
  std::thread writer([&shard]() {
    for (int i = 0; i < 2000; ++i) {
      shard.LoadPut(EntryKey(1, "w" + std::to_string(i)), ObjValue(100 + i, 1));
    }
  });
  size_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const size_t now = shard.ScanChildren(1).size();
    EXPECT_GE(now, last);
    last = now;
  }
  writer.join();
  EXPECT_EQ(shard.ScanChildren(1).size(), 2000u);
}

}  // namespace
}  // namespace mantle
