// Paged listing internals: the ordered shard scan, the TafDB paged read, and
// Mantle's server-side pushdown (constant RPCs per page regardless of
// directory size).

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/tectonic/tectonic_service.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

TEST(ShardPagingTest, ScanChildrenAfterBoundsAndOrder) {
  Shard shard(0);
  for (int i = 0; i < 10; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "c%02d", i);
    shard.LoadPut(EntryKey(1, name), MetaValue{EntryType::kObject, 10u + i, kPermAll, 0, 0,
                                               0, 0, 1});
  }
  shard.LoadPut(AttrKey(1), MetaValue{EntryType::kAttrPrimary, 1, kPermAll, 0, 0, 0, 0, 0});

  auto first = shard.ScanChildrenAfter(1, "", 4);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first.front().key.name, "c00");
  EXPECT_EQ(first.back().key.name, "c03");

  auto second = shard.ScanChildrenAfter(1, "c03", 4);
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second.front().key.name, "c04");

  auto tail = shard.ScanChildrenAfter(1, "c07", 100);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.back().key.name, "c09");

  EXPECT_TRUE(shard.ScanChildrenAfter(1, "c09", 4).empty());
  EXPECT_TRUE(shard.ScanChildrenAfter(2, "", 4).empty());
}

TEST(ShardPagingTest, StartAfterSkipsAttrRowsAndForeignPids) {
  Shard shard(0);
  shard.LoadPut(AttrKey(5), MetaValue{EntryType::kAttrPrimary, 5, kPermAll, 0, 0, 0, 0, 0});
  shard.LoadPut(EntryKey(5, "x"), MetaValue{EntryType::kObject, 6, kPermAll, 0, 0, 0, 0, 5});
  shard.LoadPut(EntryKey(6, "y"), MetaValue{EntryType::kObject, 7, kPermAll, 0, 0, 0, 0, 6});
  auto page = shard.ScanChildrenAfter(5, "", 10);
  ASSERT_EQ(page.size(), 1u);
  EXPECT_EQ(page[0].key.name, "x");
}

TEST(TafDbPagingTest, ListChildrenAfterRoundTrips) {
  Network network(FastNetworkOptions());
  TafDb db(&network, FastTafDbOptions());
  for (int i = 0; i < 6; ++i) {
    db.LoadPut(EntryKey(9, "n" + std::to_string(i)),
               MetaValue{EntryType::kObject, 20u + i, kPermAll, 0, 0, 0, 0, 9});
  }
  auto page = db.ListChildrenAfter(9, "n1", 3);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->size(), 3u);
  EXPECT_EQ((*page)[0].key.name, "n2");
  EXPECT_EQ((*page)[2].key.name, "n4");
}

TEST(MantlePagingTest, PageCostIsConstantRegardlessOfDirectorySize) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.BulkLoadDir("/big").ok());
  for (int i = 0; i < 500; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "obj%04d", i);
    ASSERT_TRUE(service.BulkLoadObject(std::string("/big/") + name, 1).ok());
  }
  MetadataService::ListPage page;
  OpResult result = service.ListObjects("/big", "", 10, &page);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(page.names.size(), 10u);
  EXPECT_TRUE(page.truncated);
  // One IndexNode resolution + one bounded shard scan: two RPCs, not a
  // whole-directory read.
  EXPECT_EQ(result.rpcs, 2);

  // Walk the rest and confirm total coverage.
  size_t seen = page.names.size();
  int pages = 1;
  while (page.truncated) {
    ASSERT_TRUE(service.ListObjects("/big", page.next_start_after, 100, &page).ok());
    seen += page.names.size();
    ASSERT_LT(++pages, 20);
  }
  EXPECT_EQ(seen, 500u);
}

// --- truncation contract regressions -----------------------------------------
//
// `truncated` means "more entries follow this page", NOT "the page is full".
// A page that happens to end exactly at the last entry must report
// truncated=false, and a continuation from the final entry must return an
// empty, non-truncated page. The default MetadataService implementation and
// Mantle's pushdown override must agree on both.

TEST(ListingContractTest, ExactBoundaryFinalPageIsNotTruncated) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.BulkLoad(BulkEntry::Dir("/edge")).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        service.BulkLoad(BulkEntry::Object("/edge/e" + std::to_string(i), 1)).ok());
  }
  MetadataService::ListPage page;
  // 6 entries, pages of 3: the second page ends exactly at the last entry.
  ASSERT_TRUE(service.ListObjects("/edge", "", 3, &page).ok());
  EXPECT_EQ(page.names.size(), 3u);
  EXPECT_TRUE(page.truncated);
  ASSERT_TRUE(service.ListObjects("/edge", page.next_start_after, 3, &page).ok());
  EXPECT_EQ(page.names.size(), 3u);
  EXPECT_FALSE(page.truncated) << "exact-boundary full page must not claim more entries";
}

TEST(ListingContractTest, ContinuationPastLastEntryIsEmptyAndFinal) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.BulkLoad(BulkEntry::Dir("/tail")).ok());
  ASSERT_TRUE(service.BulkLoad(BulkEntry::Object("/tail/only", 1)).ok());
  MetadataService::ListPage page;
  ASSERT_TRUE(service.ListObjects("/tail", "only", 5, &page).ok());
  EXPECT_TRUE(page.names.empty());
  EXPECT_FALSE(page.truncated);
}

TEST(ListingContractTest, DefaultImplementationAgreesWithMantleOverride) {
  // Drive the same boundary walk through Mantle's pushdown override and a
  // baseline that inherits MetadataService's default ListObjects; the page
  // contents and truncation flags must match step for step.
  Network mantle_net(FastNetworkOptions());
  MantleService mantle(&mantle_net, FastMantleOptions());
  Network tectonic_net(FastNetworkOptions());
  TectonicOptions tectonic_options;
  tectonic_options.tafdb = FastTafDbOptions();
  TectonicService tectonic(&tectonic_net, tectonic_options);

  for (MetadataService* service :
       {static_cast<MetadataService*>(&mantle), static_cast<MetadataService*>(&tectonic)}) {
    ASSERT_TRUE(service->BulkLoad(BulkEntry::Dir("/agree")).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(
          service->BulkLoad(BulkEntry::Object("/agree/a" + std::to_string(i), 1)).ok());
    }
  }

  for (size_t page_size : {1u, 3u, 7u, 100u}) {
    MetadataService::ListPage mantle_page;
    MetadataService::ListPage default_page;
    std::string mantle_cursor;
    std::string default_cursor;
    for (int step = 0; step < 12; ++step) {
      ASSERT_TRUE(
          mantle.ListObjects("/agree", mantle_cursor, page_size, &mantle_page).ok());
      ASSERT_TRUE(
          tectonic.ListObjects("/agree", default_cursor, page_size, &default_page).ok());
      EXPECT_EQ(mantle_page.names, default_page.names)
          << "page_size=" << page_size << " step=" << step;
      EXPECT_EQ(mantle_page.truncated, default_page.truncated)
          << "page_size=" << page_size << " step=" << step;
      if (!mantle_page.truncated) {
        break;
      }
      mantle_cursor = mantle_page.next_start_after;
      default_cursor = default_page.next_start_after;
    }
    EXPECT_FALSE(mantle_page.truncated);
  }
}

TEST(MantlePagingTest, ListSeesLiveMutations) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/live").ok());
  ASSERT_TRUE(service.CreateObject("/live/a", 1).ok());
  ASSERT_TRUE(service.CreateObject("/live/c", 1).ok());
  MetadataService::ListPage page;
  ASSERT_TRUE(service.ListObjects("/live", "", 1, &page).ok());
  ASSERT_EQ(page.names.size(), 1u);
  EXPECT_EQ(page.names[0], "a");
  // An entry landing between pages, after the continuation point, shows up.
  ASSERT_TRUE(service.CreateObject("/live/b", 1).ok());
  ASSERT_TRUE(service.ListObjects("/live", page.next_start_after, 10, &page).ok());
  EXPECT_EQ(page.names, (std::vector<std::string>{"b", "c"}));
}

}  // namespace
}  // namespace mantle
