// End-to-end integration tests of the Mantle metadata service: full stack
// (proxy logic -> IndexService/Raft -> TafDB transactions).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "src/common/path.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

class MantleServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    service_ = std::make_unique<MantleService>(network_.get(), FastMantleOptions());
  }

  void TearDown() override {
    service_.reset();
    network_.reset();
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<MantleService> service_;
};

TEST_F(MantleServiceTest, MkdirThenStat) {
  EXPECT_TRUE(service_->Mkdir("/a").ok());
  EXPECT_TRUE(service_->Mkdir("/a/b").ok());
  StatResult child = service_->StatDir("/a/b");
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(child.info.is_dir);
  EXPECT_EQ(child.info.child_count, 0);
  StatResult parent = service_->StatDir("/a");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent.info.child_count, 1);
}

TEST_F(MantleServiceTest, MkdirDuplicateFails) {
  EXPECT_TRUE(service_->Mkdir("/dup").ok());
  EXPECT_TRUE(service_->Mkdir("/dup").status.IsAlreadyExists());
}

TEST_F(MantleServiceTest, MkdirMissingParentFails) {
  EXPECT_TRUE(service_->Mkdir("/no/such/parent").status.IsNotFound());
}

TEST_F(MantleServiceTest, CreateStatDeleteObject) {
  ASSERT_TRUE(service_->Mkdir("/data").ok());
  EXPECT_TRUE(service_->CreateObject("/data/obj1", 4096).ok());
  StatResult stat = service_->StatObject("/data/obj1");
  ASSERT_TRUE(stat.ok());
  EXPECT_FALSE(stat.info.is_dir);
  EXPECT_EQ(stat.info.size, 4096u);
  StatResult dir = service_->StatDir("/data");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir.info.child_count, 1);
  EXPECT_TRUE(service_->DeleteObject("/data/obj1").ok());
  EXPECT_TRUE(service_->StatObject("/data/obj1").status.IsNotFound());
  dir = service_->StatDir("/data");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir.info.child_count, 0);
}

TEST_F(MantleServiceTest, CreateDuplicateObjectFails) {
  ASSERT_TRUE(service_->Mkdir("/d").ok());
  ASSERT_TRUE(service_->CreateObject("/d/x", 1).ok());
  EXPECT_TRUE(service_->CreateObject("/d/x", 1).status.IsAlreadyExists());
}

TEST_F(MantleServiceTest, DeleteMissingObjectFails) {
  ASSERT_TRUE(service_->Mkdir("/d").ok());
  EXPECT_TRUE(service_->DeleteObject("/d/nope").status.IsNotFound());
}

TEST_F(MantleServiceTest, LookupIsSingleRpc) {
  ASSERT_TRUE(service_->Mkdir("/l1").ok());
  ASSERT_TRUE(service_->Mkdir("/l1/l2").ok());
  ASSERT_TRUE(service_->Mkdir("/l1/l2/l3").ok());
  ASSERT_TRUE(service_->CreateObject("/l1/l2/l3/obj", 1).ok());
  OpResult result = service_->Lookup("/l1/l2/l3/obj");
  ASSERT_TRUE(result.ok());
  // The headline property: one RPC regardless of path depth.
  EXPECT_EQ(result.rpcs, 1);
}

TEST_F(MantleServiceTest, DeepPathResolution) {
  std::string path;
  for (int depth = 0; depth < 12; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(service_->Mkdir(path).ok()) << path;
  }
  ASSERT_TRUE(service_->CreateObject(path + "/leaf", 10).ok());
  EXPECT_TRUE(service_->StatObject(path + "/leaf").ok());
  OpResult lookup = service_->Lookup(path + "/leaf");
  EXPECT_TRUE(lookup.ok());
  EXPECT_EQ(lookup.rpcs, 1);
}

TEST_F(MantleServiceTest, RmdirRemovesEmptyDirectory) {
  ASSERT_TRUE(service_->Mkdir("/gone").ok());
  EXPECT_TRUE(service_->Rmdir("/gone").ok());
  EXPECT_TRUE(service_->StatDir("/gone").status.IsNotFound());
  // Name becomes reusable.
  EXPECT_TRUE(service_->Mkdir("/gone").ok());
}

TEST_F(MantleServiceTest, RmdirNonEmptyFails) {
  ASSERT_TRUE(service_->Mkdir("/full").ok());
  ASSERT_TRUE(service_->CreateObject("/full/obj", 1).ok());
  EXPECT_EQ(service_->Rmdir("/full").status.code(), StatusCode::kNotEmpty);
}

TEST_F(MantleServiceTest, ReadDirListsChildren) {
  ASSERT_TRUE(service_->Mkdir("/list").ok());
  ASSERT_TRUE(service_->Mkdir("/list/sub").ok());
  ASSERT_TRUE(service_->CreateObject("/list/o1", 1).ok());
  ASSERT_TRUE(service_->CreateObject("/list/o2", 1).ok());
  std::vector<std::string> names;
  ASSERT_TRUE(service_->ReadDir("/list", &names).ok());
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
            (std::set<std::string>{"sub", "o1", "o2"}));
}

TEST_F(MantleServiceTest, RenameMovesSubtree) {
  ASSERT_TRUE(service_->Mkdir("/src").ok());
  ASSERT_TRUE(service_->Mkdir("/src/sub").ok());
  ASSERT_TRUE(service_->CreateObject("/src/sub/obj", 7).ok());
  ASSERT_TRUE(service_->Mkdir("/dst").ok());

  ASSERT_TRUE(service_->RenameDir("/src/sub", "/dst/moved").ok());

  EXPECT_TRUE(service_->StatObject("/src/sub/obj").status.IsNotFound());
  StatResult moved = service_->StatObject("/dst/moved/obj");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.info.size, 7u);
  EXPECT_TRUE(service_->StatDir("/dst/moved").ok());
}

TEST_F(MantleServiceTest, RenameRejectsLoops) {
  ASSERT_TRUE(service_->Mkdir("/p").ok());
  ASSERT_TRUE(service_->Mkdir("/p/q").ok());
  ASSERT_TRUE(service_->Mkdir("/p/q/r").ok());
  OpResult result = service_->RenameDir("/p", "/p/q/r/into");
  EXPECT_TRUE(result.status.IsLoopDetected());
  // Original tree intact.
  EXPECT_TRUE(service_->StatDir("/p/q/r").ok());
}

TEST_F(MantleServiceTest, RenameSelfIntoSelfRejected) {
  ASSERT_TRUE(service_->Mkdir("/s").ok());
  EXPECT_TRUE(service_->RenameDir("/s", "/s/child").status.IsLoopDetected());
}

TEST_F(MantleServiceTest, RenameDestinationExistsFails) {
  ASSERT_TRUE(service_->Mkdir("/a1").ok());
  ASSERT_TRUE(service_->Mkdir("/a2").ok());
  EXPECT_TRUE(service_->RenameDir("/a1", "/a2").status.IsAlreadyExists());
}

TEST_F(MantleServiceTest, RenameMissingSourceFails) {
  ASSERT_TRUE(service_->Mkdir("/t").ok());
  EXPECT_TRUE(service_->RenameDir("/ghost", "/t/in").status.IsNotFound());
}

TEST_F(MantleServiceTest, PermissionDeniedOnWriteProtectedDir) {
  ASSERT_TRUE(service_->Mkdir("/ro").ok());
  ASSERT_TRUE(service_->SetDirPermission("/ro", kPermRead | kPermTraverse).ok());
  EXPECT_EQ(service_->CreateObject("/ro/obj", 1).status.code(),
            StatusCode::kPermissionDenied);
}

TEST_F(MantleServiceTest, PermissionDeniedWithoutTraverse) {
  ASSERT_TRUE(service_->Mkdir("/nt").ok());
  ASSERT_TRUE(service_->Mkdir("/nt/inner").ok());
  ASSERT_TRUE(service_->SetDirPermission("/nt", kPermRead | kPermWrite).ok());
  EXPECT_EQ(service_->StatDir("/nt/inner").status.code(), StatusCode::kPermissionDenied);
}

TEST_F(MantleServiceTest, BulkLoadPopulatesAllComponents) {
  ASSERT_TRUE(service_->BulkLoadDir("/w").ok());
  ASSERT_TRUE(service_->BulkLoadDir("/w/x").ok());
  ASSERT_TRUE(service_->BulkLoadObject("/w/x/obj", 123).ok());
  StatResult stat = service_->StatObject("/w/x/obj");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat.info.size, 123u);
  StatResult dir = service_->StatDir("/w/x");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir.info.child_count, 1);
}

TEST_F(MantleServiceTest, ConcurrentMkdirSharedParent) {
  ASSERT_TRUE(service_->Mkdir("/shared").ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        auto result = service_->Mkdir("/shared/d" + std::to_string(t) + "_" +
                                      std::to_string(i));
        if (!result.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  service_->tafdb()->CompactAllPending();
  StatResult shared = service_->StatDir("/shared");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared.info.child_count, kThreads * kPerThread);
}

TEST_F(MantleServiceTest, ConcurrentRenameIntoSharedTarget) {
  // The Spark commit storm in miniature: temp dirs renamed into one output
  // directory concurrently.
  ASSERT_TRUE(service_->Mkdir("/out").ok());
  constexpr int kThreads = 8;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(service_->Mkdir("/tmp" + std::to_string(t)).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto result = service_->RenameDir("/tmp" + std::to_string(t),
                                        "/out/part" + std::to_string(t));
      if (!result.ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  std::vector<std::string> names;
  ASSERT_TRUE(service_->ReadDir("/out", &names).ok());
  EXPECT_EQ(names.size(), static_cast<size_t>(kThreads));
}

// --- typed error payload ------------------------------------------------------
//
// Failures carry the phase and failing component as structured fields;
// callers switch on OpPhase instead of string-matching Status::message().

TEST_F(MantleServiceTest, LookupFailureReportsPhaseAndMissingPrefix) {
  OpResult missing = service_->Mkdir("/no/such/parent");
  EXPECT_TRUE(missing.status.IsNotFound());
  EXPECT_EQ(missing.failed_phase, OpPhase::kLookup);
  EXPECT_EQ(missing.failed_component, "/no");  // deepest prefix that resolved to nothing
}

TEST_F(MantleServiceTest, ExecuteFailureReportsPhaseAndLeaf) {
  ASSERT_TRUE(service_->Mkdir("/typed").ok());
  OpResult dup = service_->Mkdir("/typed");
  EXPECT_TRUE(dup.status.IsAlreadyExists());
  EXPECT_EQ(dup.failed_phase, OpPhase::kExecute);  // MustNotExist txn precondition
  EXPECT_EQ(dup.failed_component, "typed");
}

TEST_F(MantleServiceTest, RenameLoopReportsLoopDetectPhase) {
  ASSERT_TRUE(service_->Mkdir("/cycle").ok());
  ASSERT_TRUE(service_->Mkdir("/cycle/sub").ok());
  OpResult loop = service_->RenameDir("/cycle", "/cycle/sub/in");
  EXPECT_TRUE(loop.status.IsLoopDetected());
  EXPECT_EQ(loop.failed_phase, OpPhase::kLoopDetect);
  EXPECT_EQ(loop.failed_component, "cycle");
}

TEST_F(MantleServiceTest, SuccessLeavesErrorPayloadEmpty) {
  OpResult ok = service_->Mkdir("/clean");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.failed_phase, OpPhase::kNone);
  EXPECT_TRUE(ok.failed_component.empty());
  EXPECT_STREQ(OpPhaseName(OpPhase::kNone), "none");
  EXPECT_STREQ(OpPhaseName(OpPhase::kLookup), "lookup");
  EXPECT_STREQ(OpPhaseName(OpPhase::kLoopDetect), "loop_detect");
  EXPECT_STREQ(OpPhaseName(OpPhase::kExecute), "execute");
}

TEST_F(MantleServiceTest, PerOpMetricsAccumulateInRegistry) {
  const uint64_t count_before =
      obs::Metrics::Instance().CounterValue("core.op.mkdir.count");
  const uint64_t failures_before =
      obs::Metrics::Instance().CounterValue("core.op.mkdir.failures");
  ASSERT_TRUE(service_->Mkdir("/metered").ok());
  EXPECT_TRUE(service_->Mkdir("/metered").status.IsAlreadyExists());
  EXPECT_GE(obs::Metrics::Instance().CounterValue("core.op.mkdir.count"),
            count_before + 2);
  EXPECT_GE(obs::Metrics::Instance().CounterValue("core.op.mkdir.failures"),
            failures_before + 1);
  EXPECT_GT(obs::Metrics::Instance()
                .HistogramValue("core.op.mkdir.latency_nanos")
                .count,
            0u);
}

TEST_F(MantleServiceTest, ExplicitOpContextCarriesTraceThroughAnOperation) {
  ASSERT_TRUE(service_->Mkdir("/traced").ok());
  obs::OpTrace trace;
  OpContext ctx = service_->MakeOpContext();
  ctx.trace = &trace;
  ASSERT_TRUE(service_->Mkdir(ctx, "/traced/child").ok());
  // The op recorded a root span plus nested lookup/execute children.
  ASSERT_FALSE(trace.spans().empty());
  bool saw_lookup = false;
  bool saw_execute = false;
  for (const auto& span : trace.spans()) {
    saw_lookup = saw_lookup || span.name == "lookup";
    saw_execute = saw_execute || span.name == "execute";
  }
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_execute);
  EXPECT_EQ(trace.spans().front().name, "mkdir");
}

TEST_F(MantleServiceTest, DumpStatsEmitsStableJsonSections) {
  ASSERT_TRUE(service_->Mkdir("/stats").ok());
  const std::string json = service_->DumpStats();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"tafdb.compaction.backlog\""), std::string::npos);
  EXPECT_NE(json.find("\"index.removal_list.depth\""), std::string::npos);
}

TEST_F(MantleServiceTest, LookupAfterRenameSeesNewPathNotOld) {
  ASSERT_TRUE(service_->Mkdir("/m1").ok());
  ASSERT_TRUE(service_->Mkdir("/m1/deep").ok());
  ASSERT_TRUE(service_->Mkdir("/m1/deep/deeper").ok());
  ASSERT_TRUE(service_->Mkdir("/m1/deep/deeper/deepest").ok());
  ASSERT_TRUE(service_->CreateObject("/m1/deep/deeper/deepest/o", 1).ok());
  // Warm the path cache.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service_->StatObject("/m1/deep/deeper/deepest/o").ok());
  }
  ASSERT_TRUE(service_->Mkdir("/m2").ok());
  ASSERT_TRUE(service_->RenameDir("/m1/deep", "/m2/relocated").ok());
  EXPECT_TRUE(service_->StatObject("/m1/deep/deeper/deepest/o").status.IsNotFound());
  EXPECT_TRUE(service_->StatObject("/m2/relocated/deeper/deepest/o").ok());
}

}  // namespace
}  // namespace mantle
