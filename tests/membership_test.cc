// Dynamic Raft membership and autonomous replica repair.
//
// Covers the runtime membership surface (AddLearner / PromoteLearner /
// RemoveNode / TransferLeadership), the leader's one-at-a-time config rule,
// and the acceptance drill: under live metadata load, crash one index-group
// voter and watch the RepairSupervisor restore the replication factor with
// zero acked-write loss, then decommission the leader via transfer.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/mantle_service.h"
#include "src/raft/group.h"
#include "src/repair/repair_supervisor.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

class SetMachine final : public StateMachine {
 public:
  std::string Apply(uint64_t, const std::string& command) override {
    std::lock_guard<std::mutex> lock(mu_);
    values_.insert(command);
    return command;
  }
  std::string Snapshot() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "S";  // non-empty even when the set is
    for (const auto& value : values_) {
      out += value;
      out += '\n';
    }
    return out;
  }
  void Restore(const std::string& snapshot) override {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
    size_t pos = 1;  // skip the header byte
    while (pos < snapshot.size()) {
      const size_t end = snapshot.find('\n', pos);
      values_.insert(snapshot.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  std::set<std::string> values() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::string> values_;
};

struct Harness {
  std::unique_ptr<Network> network;
  // Machines arrive from the factory at construction AND at runtime
  // (AddLearner), so the table is a guarded map, not a fixed vector.
  std::mutex mu;
  std::map<uint32_t, SetMachine*> machines;
  std::unique_ptr<RaftGroup> group;

  SetMachine* machine(uint32_t id) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = machines.find(id);
    return it == machines.end() ? nullptr : it->second;
  }
};

std::unique_ptr<Harness> MakeGroup(uint32_t voters, uint64_t snapshot_threshold = 0) {
  auto harness = std::make_unique<Harness>();
  harness->network = std::make_unique<Network>(FastNetworkOptions());
  RaftOptions options = FastRaftOptions();
  options.snapshot_threshold_entries = snapshot_threshold;
  harness->group = std::make_unique<RaftGroup>(
      harness->network.get(), "memb", voters, 0,
      [h = harness.get()](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto machine = std::make_unique<SetMachine>();
        std::lock_guard<std::mutex> lock(h->mu);
        h->machines[id] = machine.get();
        return machine;
      },
      options);
  harness->group->Start();
  return harness;
}

bool WaitFor(const std::function<bool()>& predicate, int64_t timeout_nanos) {
  const int64_t deadline = MonotonicNanos() + timeout_nanos;
  while (MonotonicNanos() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

// --- runtime membership --------------------------------------------------------

TEST(MembershipTest, AddPromoteRemoveRoundTrip) {
  auto harness = MakeGroup(3);
  RaftGroup* group = harness->group.get();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(group->Propose("a" + std::to_string(i)).ok());
  }

  // Join: a fresh node enters as a learner and catches up (the leader's log
  // has never been compacted, so AddLearner forces a snapshot first).
  auto added = group->AddLearner();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const uint32_t learner = *added;
  EXPECT_EQ(learner, 3u);
  EXPECT_TRUE(group->CommittedConfig().IsLearner(learner));
  EXPECT_EQ(group->Majority(), 2u);  // learners do not change the quorum

  ASSERT_TRUE(WaitFor(
      [&]() {
        SetMachine* machine = harness->machine(learner);
        return machine != nullptr && machine->values().size() == 40u;
      },
      10'000'000'000))
      << "learner never caught up";

  // Promote: voter set grows once the learner is within the lag bound.
  ASSERT_TRUE(group->PromoteLearner(learner).ok());
  RaftConfig config = group->CommittedConfig();
  EXPECT_TRUE(config.IsVoter(learner));
  EXPECT_EQ(config.voters.size(), 4u);
  EXPECT_EQ(group->Majority(), 3u);

  // Remove a voter that is not the leader; the group shrinks back to 3.
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  uint32_t victim = UINT32_MAX;
  for (uint32_t id : config.voters) {
    if (id != leader->id() && id != learner) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, UINT32_MAX);
  ASSERT_TRUE(group->RemoveNode(victim).ok());
  group->DecommissionNode(victim);
  config = group->CommittedConfig();
  EXPECT_FALSE(config.IsMember(victim));
  EXPECT_EQ(config.voters.size(), 3u);
  EXPECT_EQ(group->Majority(), 2u);

  // The reshaped group still commits, and the promoted node sees the write.
  ASSERT_TRUE(group->Propose("after-surgery").ok());
  ASSERT_TRUE(WaitFor(
      [&]() { return harness->machine(learner)->values().count("after-surgery") > 0; },
      5'000'000'000));
  EXPECT_GT(group->leader()->stats().config_changes.load(), 0u);
}

TEST(MembershipTest, LeaderRefusesOverlappingConfigChanges) {
  auto harness = MakeGroup(3);
  RaftGroup* group = harness->group.get();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(group->Propose("x" + std::to_string(i)).ok());
  }
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  std::vector<RaftNode*> followers;
  for (uint32_t id = 0; id < group->num_nodes(); ++id) {
    if (group->node(id) != leader) {
      followers.push_back(group->node(id));
    }
  }
  ASSERT_EQ(followers.size(), 2u);
  // With both followers stopped the kConfig entry appends but cannot commit,
  // holding the change in flight.
  followers[0]->Stop();
  followers[1]->Stop();

  const RaftConfig base = leader->config();
  const uint64_t log_before = leader->last_log_index();
  Status first = Status::Ok();
  std::thread proposer(
      [&]() { first = leader->ProposeConfigChange(base.Without(followers[0]->id())); });
  ASSERT_TRUE(WaitFor([&]() { return leader->last_log_index() > log_before; },
                      5'000'000'000))
      << "first config change never reached the log";

  // One-at-a-time rule: a second change is refused while the first is
  // uncommitted, even though it would be legal on its own.
  Status second = leader->ProposeConfigChange(base.Without(followers[1]->id()));
  EXPECT_EQ(second.code(), StatusCode::kBusy) << second.ToString();
  EXPECT_GE(leader->stats().config_rejected.load(), 1u);

  // Restoring a follower lets the first change commit and apply.
  followers[1]->Restart();
  proposer.join();
  ASSERT_TRUE(first.ok()) << first.ToString();
  EXPECT_FALSE(group->CommittedConfig().IsMember(followers[0]->id()));
  EXPECT_EQ(group->Majority(), 2u);
}

TEST(MembershipTest, ConfigChangeValidation) {
  auto harness = MakeGroup(3);
  RaftGroup* group = harness->group.get();
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  const RaftConfig base = leader->config();

  // Identical config: idempotent success, no log entry.
  const uint64_t log_before = leader->last_log_index();
  EXPECT_TRUE(leader->ProposeConfigChange(base).ok());
  EXPECT_EQ(leader->last_log_index(), log_before);

  // Two changes at once violate the one-at-a-time rule.
  RaftConfig two = base.Without(1).WithLearner(7);
  EXPECT_EQ(leader->ProposeConfigChange(two).code(), StatusCode::kInvalidArgument);

  // Emptying the voter set can never be legal.
  RaftConfig empty;
  EXPECT_EQ(leader->ProposeConfigChange(empty).code(), StatusCode::kInvalidArgument);

  // Followers refuse config proposals outright.
  RaftNode* follower = nullptr;
  for (uint32_t id = 0; id < group->num_nodes(); ++id) {
    if (group->node(id) != leader) {
      follower = group->node(id);
      break;
    }
  }
  ASSERT_NE(follower, nullptr);
  EXPECT_EQ(follower->ProposeConfigChange(base.Without(0)).code(),
            StatusCode::kUnavailable);
}

TEST(MembershipTest, TransferLeadershipUsesTimeoutNow) {
  auto harness = MakeGroup(3);
  RaftGroup* group = harness->group.get();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group->Propose("t" + std::to_string(i)).ok());
  }
  RaftNode* old_leader = group->WaitForLeader();
  ASSERT_NE(old_leader, nullptr);

  ASSERT_TRUE(group->TransferLeadership().ok());
  RaftNode* new_leader = group->WaitForLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader, old_leader);
  // The new leader campaigned because it was told to, not because its
  // election timer fired.
  EXPECT_GE(new_leader->stats().timeout_now_received.load(), 1u);

  // Writes resume immediately on the new leader.
  ASSERT_TRUE(group->Propose("after-transfer").ok());
}

TEST(MembershipTest, RemovingTheLeaderTransfersFirst) {
  auto harness = MakeGroup(3);
  RaftGroup* group = harness->group.get();
  ASSERT_TRUE(group->Propose("seed").ok());
  RaftNode* old_leader = group->WaitForLeader();
  ASSERT_NE(old_leader, nullptr);
  const uint32_t old_id = old_leader->id();

  ASSERT_TRUE(group->RemoveNode(old_id).ok());
  group->DecommissionNode(old_id);

  RaftNode* new_leader = group->WaitForLeader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id(), old_id);
  const RaftConfig config = group->CommittedConfig();
  EXPECT_FALSE(config.IsMember(old_id));
  EXPECT_EQ(config.voters.size(), 2u);
  ASSERT_TRUE(group->Propose("after-decommission").ok());
}

TEST(MembershipTest, RemovedNodeStopsVotingAndCampaigning) {
  auto harness = MakeGroup(3);
  RaftGroup* group = harness->group.get();
  ASSERT_TRUE(group->Propose("seed").ok());
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  RaftNode* removed = nullptr;
  for (uint32_t id = 0; id < group->num_nodes(); ++id) {
    if (group->node(id) != leader) {
      removed = group->node(id);
      break;
    }
  }
  ASSERT_NE(removed, nullptr);
  // Remove the node but leave it RUNNING: it must learn it is out and go
  // quiet instead of disrupting the group with campaigns.
  ASSERT_TRUE(group->RemoveNode(removed->id()).ok());
  ASSERT_TRUE(WaitFor([&]() { return !removed->is_voter(); }, 5'000'000'000))
      << "removed node never learned the config dropping it";
  EXPECT_EQ(removed->role(), RaftRole::kLearner);

  // A vote request to the removed node is refused.
  RequestVoteRequest vote;
  vote.term = removed->term() + 10;
  vote.candidate_id = 0;
  vote.last_log_index = 1000;
  vote.last_log_term = 1000;
  EXPECT_FALSE(removed->HandleRequestVote(vote).vote_granted);

  // The survivors keep committing with the removed node still live.
  const uint64_t elections_before = removed->stats().elections_started.load();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group->Propose("q" + std::to_string(i)).ok());
  }
  EXPECT_EQ(removed->stats().elections_started.load(), elections_before);
}

// --- acceptance drill ----------------------------------------------------------

TEST(MembershipAcceptanceTest, KillAndReplaceDrillUnderLoad) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 3'000'000'000;  // every op resolves under faults
  MantleService service(&network, options);

  ASSERT_TRUE(service.Mkdir("/base").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.Mkdir("/base/seed" + std::to_string(i)).ok());
  }

  // Fast, seeded repair windows: deterministic declaration timeline.
  mantle::RepairOptions repair;
  repair.poll_interval_nanos = 5'000'000;      // 5 ms scans
  repair.suspicion_window_nanos = 40'000'000;  // 40 ms + seeded jitter
  repair.peer_down_threshold = 3;
  repair.promote_max_lag_entries = 64;
  repair.use_breaker_signal = false;  // peer_down streaks only: deterministic
  repair.seed = 0xd1e5;
  service.EnableIndexAutoRepair(repair);

  // Live load, recording every acknowledged write.
  std::atomic<bool> stop{false};
  std::mutex acked_mu;
  std::vector<std::string> acked;
  std::vector<std::thread> load;
  for (int tid = 0; tid < 2; ++tid) {
    load.emplace_back([&, tid]() {
      for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
        const std::string path =
            "/base/w" + std::to_string(tid) + "_" + std::to_string(i);
        if (service.Mkdir(path).ok()) {
          std::lock_guard<std::mutex> lock(acked_mu);
          acked.push_back(path);
        }
      }
    });
  }
  load.emplace_back([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      service.StatDir("/base");  // background read pressure
    }
  });

  // Crash one index-group voter that is not the leader: an unplanned machine
  // loss under live traffic.
  RaftGroup* group = service.index()->group();
  RaftNode* leader = group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  const RaftConfig before = group->CommittedConfig();
  ASSERT_EQ(before.voters.size(), 3u);
  uint32_t victim = UINT32_MAX;
  for (uint32_t id : before.voters) {
    if (id != leader->id()) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, UINT32_MAX);
  service.CrashIndexReplica(victim);

  // The supervisor suspects, declares, and replaces the corpse on its own.
  ASSERT_TRUE(WaitFor(
      [&]() { return service.index_repair()->stats().replacements.load() >= 1u; },
      30'000'000'000))
      << "supervisor never completed a replacement; failures="
      << service.index_repair()->stats().failures.load();

  stop.store(true, std::memory_order_release);
  for (std::thread& thread : load) {
    thread.join();
  }

  // Full replication factor restored, corpse out, a fresh node voting.
  const RaftConfig after = group->CommittedConfig();
  EXPECT_EQ(after.voters.size(), 3u);
  EXPECT_FALSE(after.IsMember(victim));
  bool has_new_node = false;
  for (uint32_t id : after.voters) {
    if (id >= before.voters.size() + before.learners.size()) {
      has_new_node = true;
    }
  }
  EXPECT_TRUE(has_new_node) << "replacement voter missing from the config";
  EXPECT_GE(service.index_repair()->stats().suspected.load(), 1u);
  EXPECT_GE(service.index_repair()->stats().declared_dead.load(), 1u);

  // Zero acked-write loss: every path acknowledged during the drill - before,
  // during and after the crash - still resolves.
  size_t checked = 0;
  {
    std::lock_guard<std::mutex> lock(acked_mu);
    for (const std::string& path : acked) {
      StatResult result = service.StatDir(path);
      EXPECT_TRUE(result.ok()) << path << ": " << result.status.ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  // Planned decommission of the leader: transfer + remove, bounded stall.
  RaftNode* pre_leader = group->WaitForLeader();
  ASSERT_NE(pre_leader, nullptr);
  const uint32_t pre_leader_id = pre_leader->id();
  ASSERT_TRUE(service.DecommissionIndexLeader().ok());
  RaftNode* post_leader = group->WaitForLeader();
  ASSERT_NE(post_leader, nullptr);
  EXPECT_NE(post_leader->id(), pre_leader_id);
  // The transfer path (TimeoutNow) moved leadership, not an expired election
  // timer - that is what bounds the write stall below one election timeout.
  EXPECT_GE(post_leader->stats().timeout_now_received.load(), 1u);
  EXPECT_FALSE(group->CommittedConfig().IsMember(pre_leader_id));

  // Writes and reads resume immediately on the reshaped group.
  ASSERT_TRUE(service.Mkdir("/base/after_decommission").ok());
  EXPECT_TRUE(service.StatDir("/base/after_decommission").ok());
  EXPECT_TRUE(service.StatDir("/base/seed0").ok());
}

}  // namespace
}  // namespace mantle
