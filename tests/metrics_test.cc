// Unit tests for the observability layer: the sharded metrics registry
// (exactness under concurrency, histogram quantile behaviour, stable JSON
// export) and the request-scoped trace spans / OpContext plumbing.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/op_context.h"
#include "src/obs/trace.h"

namespace mantle {
namespace {

using obs::HistogramMetric;
using obs::HistogramSnapshot;
using obs::Metrics;

TEST(MetricsTest, EnabledByDefault) { EXPECT_TRUE(obs::MetricsEnabled()); }

TEST(MetricsTest, RegistryReturnsStablePointers) {
  auto& registry = Metrics::Instance();
  obs::Counter* a = registry.GetCounter("test.registry.counter");
  obs::Counter* b = registry.GetCounter("test.registry.counter");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.GetGauge("test.registry.gauge"),
            registry.GetGauge("test.registry.gauge"));
  EXPECT_EQ(registry.GetHistogram("test.registry.histogram"),
            registry.GetHistogram("test.registry.histogram"));
}

TEST(MetricsTest, CounterConcurrentIncrementsAreExact) {
  obs::Counter* counter = Metrics::Instance().GetCounter("test.counter.concurrent");
  counter->Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsTest, CounterAddDelta) {
  obs::Counter* counter = Metrics::Instance().GetCounter("test.counter.delta");
  counter->Reset();
  counter->Add(5);
  counter->Add(7);
  EXPECT_EQ(counter->Value(), 12u);
}

TEST(MetricsTest, GaugeSetAddSub) {
  obs::Gauge* gauge = Metrics::Instance().GetGauge("test.gauge.basic");
  gauge->Reset();
  gauge->Set(10);
  gauge->Add(5);
  gauge->Sub(3);
  EXPECT_EQ(gauge->Value(), 12);
  gauge->Set(-4);
  EXPECT_EQ(gauge->Value(), -4);
}

TEST(MetricsTest, HistogramSmallValuesAreExact) {
  // Values below one octave's linear range land in unit-width buckets, so the
  // reported percentiles are exact.
  obs::HistogramMetric* histogram =
      Metrics::Instance().GetHistogram("test.histogram.small");
  histogram->Reset();
  for (int64_t v = 1; v <= 10; ++v) {
    histogram->Record(v);
  }
  HistogramSnapshot snap = histogram->Aggregate();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.sum, 55);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 10);
  EXPECT_EQ(snap.Percentile(50), 5);
  EXPECT_EQ(snap.Percentile(100), 10);
}

TEST(MetricsTest, HistogramQuantilesMonotoneAndBounded) {
  obs::HistogramMetric* histogram =
      Metrics::Instance().GetHistogram("test.histogram.monotone");
  histogram->Reset();
  // A wide deterministic spread across many octaves.
  for (int64_t v = 1; v <= 1'000'000; v = v * 3 / 2 + 1) {
    histogram->Record(v);
  }
  HistogramSnapshot snap = histogram->Aggregate();
  ASSERT_GT(snap.count, 0u);
  int64_t previous = 0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const int64_t value = snap.Percentile(p);
    EXPECT_GE(value, previous) << "quantiles must be monotone in p (p=" << p << ")";
    EXPECT_GE(value, snap.min);
    EXPECT_LE(value, snap.max);
    previous = value;
  }
  EXPECT_EQ(snap.Percentile(100), snap.max);
}

TEST(MetricsTest, HistogramRelativeErrorWithinBucketWidth) {
  // Every recorded value must fall into a bucket whose upper bound is within
  // the advertised ~6% relative error (1/16 sub-bucket granularity).
  for (int64_t value : {1LL, 17LL, 100LL, 1'000LL, 123'456LL, 80'000'000LL,
                        123'456'789'012LL}) {
    const int index = HistogramMetric::BucketIndex(value);
    const int64_t upper = HistogramMetric::BucketUpperBound(index);
    EXPECT_GE(upper, value);
    EXPECT_LE(static_cast<double>(upper - value), 0.0625 * static_cast<double>(value) + 1.0)
        << "value " << value << " bucket upper bound " << upper;
  }
}

TEST(MetricsTest, HistogramBucketIndexMonotone) {
  int previous = -1;
  for (int64_t v = 0; v < 100'000; v += 7) {
    const int index = HistogramMetric::BucketIndex(v);
    EXPECT_GE(index, previous);
    previous = index;
  }
}

TEST(MetricsTest, HistogramConcurrentRecordsKeepExactCountAndSum) {
  obs::HistogramMetric* histogram =
      Metrics::Instance().GetHistogram("test.histogram.concurrent");
  histogram->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(1 + ((t + i) % 1000));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  HistogramSnapshot snap = histogram->Aggregate();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 1000);
  EXPECT_GT(snap.sum, 0);
}

TEST(MetricsTest, DumpJsonIsSortedAndStable) {
  auto& registry = Metrics::Instance();
  // Register deliberately out of lexicographic order.
  registry.GetCounter("test.zzz.counter")->Add();
  registry.GetCounter("test.aaa.counter")->Add();
  registry.GetCounter("test.mmm.counter")->Add();
  const std::string dump = registry.DumpJson();
  const size_t aaa = dump.find("\"test.aaa.counter\"");
  const size_t mmm = dump.find("\"test.mmm.counter\"");
  const size_t zzz = dump.find("\"test.zzz.counter\"");
  ASSERT_NE(aaa, std::string::npos);
  ASSERT_NE(mmm, std::string::npos);
  ASSERT_NE(zzz, std::string::npos);
  EXPECT_LT(aaa, mmm);
  EXPECT_LT(mmm, zzz);
  // Stable: a second scrape of unchanged instruments is byte-identical.
  EXPECT_EQ(dump, registry.DumpJson());
  // Schema: three sections in fixed order.
  const size_t counters = dump.find("\"counters\"");
  const size_t gauges = dump.find("\"gauges\"");
  const size_t histograms = dump.find("\"histograms\"");
  ASSERT_NE(counters, std::string::npos);
  ASSERT_NE(gauges, std::string::npos);
  ASSERT_NE(histograms, std::string::npos);
  EXPECT_LT(counters, gauges);
  EXPECT_LT(gauges, histograms);
}

TEST(MetricsTest, ConvenienceScrapesHandleUnknownNames) {
  auto& registry = Metrics::Instance();
  EXPECT_EQ(registry.CounterValue("test.unknown.counter.name"), 0u);
  EXPECT_EQ(registry.GaugeValue("test.unknown.gauge.name"), 0);
  EXPECT_EQ(registry.HistogramValue("test.unknown.histogram.name").count, 0u);
}

TEST(TraceTest, SpansNestAndClose) {
  obs::OpTrace trace("mkdir");
  {
    obs::ScopedSpan lookup(&trace, "lookup");
    obs::ScopedSpan resolve(&trace, "index.resolve");
  }
  {
    obs::ScopedSpan execute(&trace, "execute");
  }
  trace.End(0);
  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.spans()[0].name, "mkdir");
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[1].name, "lookup");
  EXPECT_EQ(trace.spans()[1].parent, 0);
  EXPECT_EQ(trace.spans()[2].name, "index.resolve");
  EXPECT_EQ(trace.spans()[2].parent, 1);
  EXPECT_EQ(trace.spans()[2].depth, 2);
  EXPECT_EQ(trace.spans()[3].name, "execute");
  EXPECT_EQ(trace.spans()[3].parent, 0);
  for (const auto& span : trace.spans()) {
    EXPECT_GT(span.end_nanos, 0) << span.name << " left open";
    EXPECT_GE(span.end_nanos, span.start_nanos);
  }
  EXPECT_GT(trace.RootDurationNanos(), 0);
  const std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("mkdir"), std::string::npos);
  EXPECT_NE(rendered.find("index.resolve"), std::string::npos);
}

TEST(TraceTest, EndClosesForgottenChildren) {
  obs::OpTrace trace;
  const int root = trace.Begin("root");
  trace.Begin("leaked-child");
  trace.End(root);
  for (const auto& span : trace.spans()) {
    EXPECT_GT(span.end_nanos, 0) << span.name;
  }
}

TEST(TraceTest, ScopedSpanToleratesNullTrace) {
  obs::ScopedSpan span(nullptr, "noop");  // must not crash
}

TEST(OpContextTest, NullContextIsUnlimitedAndTraceless) {
  EXPECT_FALSE(OpContext::DeadlineOf(nullptr).limited());
  EXPECT_EQ(OpContext::TraceOf(nullptr), nullptr);
}

TEST(OpContextTest, ContextCarriesDeadlineAndTrace) {
  obs::OpTrace trace("op");
  OpContext ctx;
  ctx.deadline = Deadline::After(1'000'000'000);
  ctx.trace = &trace;
  EXPECT_TRUE(OpContext::DeadlineOf(&ctx).limited());
  EXPECT_GT(OpContext::DeadlineOf(&ctx).RemainingNanos(), 0);
  EXPECT_EQ(OpContext::TraceOf(&ctx), &trace);
}

TEST(OpContextTest, ScopedOpContextPublishesAmbientDeadline) {
  EXPECT_FALSE(Deadline::Ambient().limited());
  {
    OpContext ctx;
    ctx.deadline = Deadline::After(5'000'000'000);
    ScopedOpContext shim(ctx);
    EXPECT_TRUE(Deadline::Ambient().limited());
  }
  EXPECT_FALSE(Deadline::Ambient().limited());
}

}  // namespace
}  // namespace mantle
