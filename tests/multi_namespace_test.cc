// Multi-namespace deployment (paper §7): many IndexNodes over one shared
// TafDB, with disjoint inode-id spaces; plus follower-side cache invalidation
// through the Raft log (§5.1.3).

#include <gtest/gtest.h>

#include <memory>

#include "src/common/path.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

TEST(MultiNamespaceTest, TenantsShareTafDbWithoutInterference) {
  Network network(FastNetworkOptions());
  TafDb shared_db(&network, FastTafDbOptions());

  std::vector<std::unique_ptr<MantleService>> tenants;
  for (int tenant = 0; tenant < 3; ++tenant) {
    MantleOptions options = FastMantleOptions();
    options.namespace_name = "t" + std::to_string(tenant);
    options.id_base = static_cast<InodeId>(tenant + 1) << 56;
    tenants.push_back(std::make_unique<MantleService>(&network, &shared_db, options));
  }

  // Identical paths in every namespace, different payloads.
  for (int tenant = 0; tenant < 3; ++tenant) {
    ASSERT_TRUE(tenants[tenant]->Mkdir("/common").ok());
    ASSERT_TRUE(tenants[tenant]
                    ->CreateObject("/common/data.bin", 1000u + static_cast<uint64_t>(tenant))
                    .ok());
  }
  for (int tenant = 0; tenant < 3; ++tenant) {
    StatResult stat = tenants[tenant]->StatObject("/common/data.bin");
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat.info.size, 1000u + static_cast<uint64_t>(tenant));
  }

  // Mutations in one namespace are invisible in the others.
  ASSERT_TRUE(tenants[0]->DeleteObject("/common/data.bin").ok());
  EXPECT_TRUE(tenants[0]->StatObject("/common/data.bin").status.IsNotFound());
  EXPECT_TRUE(tenants[1]->StatObject("/common/data.bin").ok());
  EXPECT_TRUE(tenants[2]->StatObject("/common/data.bin").ok());

  ASSERT_TRUE(tenants[1]->Mkdir("/only-in-t1").ok());
  EXPECT_TRUE(tenants[0]->StatDir("/only-in-t1").status.IsNotFound());
  EXPECT_TRUE(tenants[2]->StatDir("/only-in-t1").status.IsNotFound());
}

TEST(MultiNamespaceTest, RenameIsolationAcrossTenants) {
  Network network(FastNetworkOptions());
  TafDb shared_db(&network, FastTafDbOptions());
  MantleOptions a_options = FastMantleOptions();
  a_options.namespace_name = "a";
  a_options.id_base = 1ull << 56;
  MantleService a(&network, &shared_db, a_options);
  MantleOptions b_options = FastMantleOptions();
  b_options.namespace_name = "b";
  b_options.id_base = 2ull << 56;
  MantleService b(&network, &shared_db, b_options);

  for (MantleService* service : {&a, &b}) {
    ASSERT_TRUE(service->Mkdir("/src").ok());
    ASSERT_TRUE(service->CreateObject("/src/o", 1).ok());
    ASSERT_TRUE(service->Mkdir("/dst").ok());
  }
  ASSERT_TRUE(a.RenameDir("/src", "/dst/moved").ok());
  EXPECT_TRUE(a.StatObject("/dst/moved/o").ok());
  EXPECT_TRUE(a.StatObject("/src/o").status.IsNotFound());
  // Namespace b's /src is untouched.
  EXPECT_TRUE(b.StatObject("/src/o").ok());
  EXPECT_TRUE(b.StatDir("/dst/moved").status.IsNotFound());
}

TEST(MultiNamespaceTest, FollowerCachesInvalidatedThroughRaftLog) {
  // §5.1.3: "cache invalidation is synchronized within the Raft group by
  // replicating invalidation information through the Raft logs."
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.index.follower_read = true;
  options.index.offload_queue_threshold = 0;  // route reads to every replica
  MantleService service(&network, options);

  // Deep tree so prefixes are cacheable (depth 6, k=3 -> prefix depth 3).
  std::string path;
  for (int level = 0; level < 6; ++level) {
    path += "/n" + std::to_string(level);
    ASSERT_TRUE(service.Mkdir(path).ok());
  }
  ASSERT_TRUE(service.CreateObject(path + "/obj", 7).ok());
  // Warm every replica's TopDirPathCache via repeated follower reads.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.StatObject(path + "/obj").ok());
  }
  size_t warmed_replicas = 0;
  for (uint32_t i = 0; i < service.index()->num_replicas(); ++i) {
    if (service.index()->replica(i)->cache().Size() > 0) {
      ++warmed_replicas;
    }
  }
  EXPECT_GT(warmed_replicas, 1u);  // followers cached too

  // Rename the second level: every replica's cached prefixes through it must
  // die, and subsequent reads from ANY replica must see the new tree.
  ASSERT_TRUE(service.Mkdir("/other").ok());
  ASSERT_TRUE(service.RenameDir("/n0/n1", "/other/renamed").ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(service.StatObject(path + "/obj").status.IsNotFound());
    EXPECT_TRUE(service.StatObject("/other/renamed/n2/n3/n4/n5/obj").ok());
  }
}

TEST(MultiNamespaceTest, IdSpacesDoNotCollideInSharedShards) {
  Network network(FastNetworkOptions());
  TafDb shared_db(&network, FastTafDbOptions());
  MantleOptions a_options = FastMantleOptions();
  a_options.id_base = 1ull << 56;
  a_options.namespace_name = "ida";
  MantleService a(&network, &shared_db, a_options);
  MantleOptions b_options = FastMantleOptions();
  b_options.id_base = 2ull << 56;
  b_options.namespace_name = "idb";
  MantleService b(&network, &shared_db, b_options);

  // Create many entries in both; the total row count must equal the sum of
  // both tenants' rows (no overwrites across namespaces).
  const size_t before = shared_db.TotalRows();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(a.Mkdir("/d" + std::to_string(i)).ok());
    ASSERT_TRUE(b.Mkdir("/d" + std::to_string(i)).ok());
  }
  // Each mkdir adds an entry row and an attribute row.
  EXPECT_EQ(shared_db.TotalRows() - before, 2u * 2u * 30u);
}

}  // namespace
}  // namespace mantle
