#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "src/common/clock.h"
#include "src/net/network.h"

namespace mantle {
namespace {

TEST(NetworkTest, CallExecutesHandlerAndReturnsValue) {
  Network network(NetworkOptions{.zero_latency = true});
  ServerExecutor* server = network.AddServer("s", 2);
  EXPECT_EQ(server->Call([]() { return 41 + 1; }), 42);
}

TEST(NetworkTest, CallCountsOneRpcPerCall) {
  Network network(NetworkOptions{.zero_latency = true});
  ServerExecutor* server = network.AddServer("s", 2);
  ScopedRpcCounter counter;
  server->Call([]() { return 0; });
  server->Call([]() { return 0; });
  EXPECT_EQ(counter.count(), 2);
  EXPECT_EQ(network.total_rpcs(), 2u);
}

TEST(NetworkTest, AsyncCallsCountButShareOneDelay) {
  Network network(NetworkOptions{.zero_latency = true});
  ServerExecutor* server = network.AddServer("s", 4);
  ScopedRpcCounter counter;
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(server->CallAsync([i]() { return i; }));
  }
  network.InjectDelay();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(futures[i].get(), i);
  }
  EXPECT_EQ(counter.count(), 5);
}

TEST(NetworkTest, RttChargeInjectsLatency) {
  NetworkOptions options;
  options.rtt_nanos = 2'000'000;  // 2 ms, comfortably above sleep noise
  Network network(options);
  ServerExecutor* server = network.AddServer("s", 1);
  Stopwatch timer;
  server->Call([]() { return 0; });
  EXPECT_GE(timer.ElapsedNanos(), 2'000'000);
}

TEST(NetworkTest, ZeroLatencySkipsSleeps) {
  Network network(NetworkOptions{.zero_latency = true});
  ServerExecutor* server = network.AddServer("s", 1);
  Stopwatch timer;
  for (int i = 0; i < 100; ++i) {
    server->Call([]() { return 0; });
  }
  EXPECT_LT(timer.ElapsedNanos(), 500'000'000);  // sanity bound only
}

TEST(NetworkTest, BoundedExecutorCreatesQueueing) {
  NetworkOptions options;
  options.zero_latency = true;
  Network network(options);
  ServerExecutor* server = network.AddServer("s", 1);  // single worker
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&]() {
      server->Call([&]() {
        const int now = concurrent.fetch_add(1) + 1;
        int expected = max_concurrent.load();
        while (now > expected && !max_concurrent.compare_exchange_weak(expected, now)) {
        }
        PreciseSleep(3'000'000);
        concurrent.fetch_sub(1);
        return 0;
      });
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  // One worker => handlers never overlap.
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST(NetworkTest, ServiceChargeRespectsZeroLatency) {
  Network network(NetworkOptions{.zero_latency = true});
  Stopwatch timer;
  network.ChargeDbRowAccess(100);
  network.ChargeMemIndexAccess(100);
  EXPECT_LT(timer.ElapsedNanos(), 100'000'000);
}

TEST(NetworkTest, ThreadRpcCountersAreIndependent) {
  Network network(NetworkOptions{.zero_latency = true});
  ServerExecutor* server = network.AddServer("s", 2);
  std::thread other([&]() {
    ScopedRpcCounter counter;
    server->Call([]() { return 0; });
    EXPECT_EQ(counter.count(), 1);
  });
  ScopedRpcCounter counter;
  EXPECT_EQ(counter.count(), 0);
  other.join();
  EXPECT_EQ(counter.count(), 0);
}

TEST(NetworkTest, CompletedTaskCounting) {
  Network network(NetworkOptions{.zero_latency = true});
  ServerExecutor* server = network.AddServer("s", 2);
  for (int i = 0; i < 10; ++i) {
    server->Call([]() { return 0; });
  }
  // The counter increments just after the handler's future resolves; give the
  // final worker a beat to record it.
  const int64_t deadline = MonotonicNanos() + 1'000'000'000;
  while (server->completed_tasks() < 10u && MonotonicNanos() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server->completed_tasks(), 10u);
}

}  // namespace
}  // namespace mantle
