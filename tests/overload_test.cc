// Overload protection: admission control, expired-work shedding, retry
// budgets, circuit breakers, priority tiers, and hedged reads.
//
// The headline scenario is the seeded overload drill from ISSUE 6: an
// open-loop burst at ~4x a server's saturation throughput, run once without
// protection (unbounded queue, metastable collapse - work completes long
// after its caller gave up) and once with admission control + shedding
// (goodput pinned near capacity). All assertions are metrics deltas; the
// registry is process-global and shared across tests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/admission/admission.h"
#include "src/admission/circuit_breaker.h"
#include "src/admission/retry_budget.h"
#include "src/common/path.h"
#include "src/core/retry.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

uint64_t MetricValue(const char* name) {
  return obs::Metrics::Instance().CounterValue(name);
}

// --- satellite: tagged retry exhaustion --------------------------------------

TEST(OverloadTest, RetryExhaustionIsTaggedOverloaded) {
  RetryOptions options;
  options.max_attempts = 3;
  options.base_backoff_nanos = 1'000;
  options.max_backoff_nanos = 10'000;
  const uint64_t exhausted_before = MetricValue("retry.exhausted");
  int retries = -1;
  Status status = RetryTransaction([] { return Status::Aborted("hot directory"); },
                                   options, &retries);
  EXPECT_TRUE(status.IsOverloaded()) << status;
  // The last raw failure stays diagnosable in the tagged status.
  EXPECT_NE(status.message().find("Aborted"), std::string::npos) << status;
  EXPECT_EQ(retries, 3);
  EXPECT_EQ(MetricValue("retry.exhausted"), exhausted_before + 1);

  // The deadline path keeps its distinct kTimeout tag.
  OpContext ctx;
  ctx.deadline = Deadline::After(1);  // effectively already expired
  Status timed_out = RetryTransaction([] { return Status::Busy("lock"); },
                                      options, &retries, &ctx);
  EXPECT_EQ(timed_out.code(), StatusCode::kTimeout) << timed_out;
}

// --- satellite: one definition of "busy" -------------------------------------

TEST(OverloadTest, BusyPredicateIsShared) {
  // The static predicate both admission control and follower-read offload use.
  EXPECT_TRUE(AdmissionController::QueueBusy(0, 0));   // zero threshold: always busy
  EXPECT_TRUE(AdmissionController::QueueBusy(7, 0));
  EXPECT_FALSE(AdmissionController::QueueBusy(0, 2));
  EXPECT_FALSE(AdmissionController::QueueBusy(1, 2));
  EXPECT_TRUE(AdmissionController::QueueBusy(2, 2));
  EXPECT_TRUE(AdmissionController::QueueBusy(5, 2));

  // ServerExecutor::Busy is the same predicate over the live queue depth.
  Network network(FastNetworkOptions());
  ServerExecutor* server = network.AddServer("busy-probe", 1);
  EXPECT_TRUE(server->Busy(0));
  EXPECT_FALSE(server->Busy(1));
}

TEST(OverloadTest, FollowerOffloadReadsTheSharedBusySignal) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.index.follower_read = true;
  options.index.offload_queue_threshold = 0;  // Busy(0) == true: always offload
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/off").ok());

  const uint64_t offload_before = MetricValue("index.read.offload");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.StatDir("/off").ok());
  }
  // Every lookup consulted the shared busy predicate and offloaded.
  EXPECT_GE(MetricValue("index.read.offload"), offload_before + 20);
}

// --- the acceptance drill: open-loop 4x-capacity burst -----------------------

// One TafDB-like server: 2 workers, 2 ms of modeled CPU per request, so it
// saturates at ~1000 ops/s. The open-loop generator offers ~4000 ops/s and
// never waits for responses; each request carries a 30 ms deadline. Goodput
// counts replies that were both successful and on time.
struct DrillResult {
  int issued = 0;
  int good = 0;
};

DrillResult RunOverloadDrill(bool protected_config) {
  NetworkOptions net_options;
  net_options.zero_latency = false;
  net_options.rtt_nanos = 10'000;  // 10 us
  if (protected_config) {
    // Cap in-queue wait at ~8 * 2ms / 2 workers = 8 ms, well under the 30 ms
    // deadline: every admitted request is good.
    net_options.admission.max_queue_depth = 8;
  }
  Network network(net_options);
  ServerExecutor* server = network.AddServer("drill-db", 2);

  constexpr int64_t kServiceNanos = 2'000'000;    // 2 ms -> capacity ~1000/s
  constexpr int64_t kDeadlineNanos = 30'000'000;  // 30 ms per request
  constexpr int kIssuers = 4;
  constexpr int kPerIssuer = 200;                 // ~1000/s per issuer for 0.8 s
  constexpr auto kIssueInterval = std::chrono::microseconds(1000);

  struct Pending {
    std::future<Result<int64_t>> reply;
    int64_t deadline_nanos;
  };
  std::vector<std::vector<Pending>> pending(kIssuers);
  std::vector<std::thread> issuers;
  for (int t = 0; t < kIssuers; ++t) {
    pending[t].reserve(kPerIssuer);
    issuers.emplace_back([&, t]() {
      for (int i = 0; i < kPerIssuer; ++i) {
        ScopedDeadline deadline(kDeadlineNanos);
        auto reply = server->CallAsync(
            [&network]() -> Result<int64_t> {
              network.ChargeService(kServiceNanos);
              return MonotonicNanos();  // completion stamp for goodput scoring
            },
            [](const Status& fault) -> Result<int64_t> { return fault; });
        pending[t].push_back(Pending{std::move(reply), DeadlineBudget::AbsoluteNanos()});
        std::this_thread::sleep_for(kIssueInterval);
      }
    });
  }
  for (auto& issuer : issuers) {
    issuer.join();
  }
  DrillResult result;
  for (auto& lane : pending) {
    for (Pending& p : lane) {
      ++result.issued;
      Result<int64_t> reply = p.reply.get();
      if (reply.ok() && *reply <= p.deadline_nanos) {
        ++result.good;
      }
    }
  }
  return result;
}

TEST(OverloadTest, AdmissionDoublesGoodputAtFourTimesCapacity) {
  const uint64_t expired_before_unprotected = MetricValue("admission.expired.executed");
  DrillResult unprotected = RunOverloadDrill(/*protected_config=*/false);
  // The unprotected queue grows without bound: handlers keep executing long
  // after their callers' deadlines lapsed.
  EXPECT_GT(MetricValue("admission.expired.executed"), expired_before_unprotected);

  const uint64_t expired_before_protected = MetricValue("admission.expired.executed");
  const uint64_t shed_before = MetricValue("admission.shed.expired");
  const uint64_t rejected_before = MetricValue("admission.rejected.depth");
  DrillResult protected_run = RunOverloadDrill(/*protected_config=*/true);

  ASSERT_EQ(unprotected.issued, protected_run.issued);
  // Protection sheds most of the burst at the door...
  EXPECT_GT(MetricValue("admission.rejected.depth"), rejected_before);
  // ...and zero handlers execute after their in-queue deadline expired: an
  // expired admitted request is shed, not run.
  EXPECT_EQ(MetricValue("admission.expired.executed"), expired_before_protected);
  (void)shed_before;  // sheds are legal but not required when waits stay bounded

  // Goodput: >= 2x the unprotected configuration, and a meaningful fraction
  // of capacity (not just "both near zero").
  EXPECT_GE(protected_run.good, 2 * unprotected.good)
      << "protected=" << protected_run.good << " unprotected=" << unprotected.good;
  EXPECT_GE(protected_run.good, 150)
      << "protected goodput collapsed: " << protected_run.good << "/"
      << protected_run.issued;
}

// --- expired-work shedding is deterministic ----------------------------------

TEST(OverloadTest, ExpiredQueuedWorkIsShedBeforeExecution) {
  NetworkOptions net_options = FastNetworkOptions();
  net_options.admission.max_queue_depth = 100;  // enabled, effectively unbounded
  Network network(net_options);
  ServerExecutor* server = network.AddServer("shed-db", 1);

  // Occupy the only worker until released.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> blocker_running{false};
  auto blocker = server->CallAsync([&blocker_running, released]() {
    blocker_running.store(true);
    released.wait();
    return Status::Ok();
  });
  while (!blocker_running.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  const uint64_t shed_before = MetricValue("admission.shed.expired");
  const uint64_t executed_before = MetricValue("admission.expired.executed");
  std::atomic<bool> victim_ran{false};
  std::future<Status> victim;
  {
    ScopedDeadline deadline(5'000'000);  // 5 ms - lapses while queued
    victim = server->CallAsync(
        [&victim_ran]() {
          victim_ran.store(true);
          return Status::Ok();
        },
        [](const Status& fault) { return fault; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release.set_value();
  ASSERT_TRUE(blocker.get().ok());

  Status status = victim.get();
  EXPECT_EQ(status.code(), StatusCode::kTimeout) << status;
  EXPECT_NE(status.message().find("shed"), std::string::npos) << status;
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(MetricValue("admission.shed.expired"), shed_before + 1);
  EXPECT_EQ(MetricValue("admission.expired.executed"), executed_before);
}

// --- priority tiers: background yields first ---------------------------------

TEST(OverloadTest, BackgroundTrafficIsShedBeforeForeground) {
  NetworkOptions net_options = FastNetworkOptions();
  net_options.admission.max_queue_depth = 4;
  net_options.admission.background_fraction = 0.5;  // background rejected at depth 2
  Network network(net_options);
  ServerExecutor* server = network.AddServer("tier-db", 1);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> blocker_running{false};
  auto blocker = server->CallAsync([&blocker_running, released]() {
    blocker_running.store(true);
    released.wait();
    return Status::Ok();
  });
  while (!blocker_running.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Two queued fillers behind the blocked worker: depth == 2.
  auto on_fault = [](const Status& fault) { return fault; };
  auto filler1 = server->CallAsync([]() { return Status::Ok(); }, on_fault);
  auto filler2 = server->CallAsync([]() { return Status::Ok(); }, on_fault);

  const uint64_t bg_rejected_before = MetricValue("admission.rejected.background");
  std::future<Status> background;
  {
    ScopedOpPriority tier(OpPriority::kBackground);
    background = server->CallAsync([]() { return Status::Ok(); }, on_fault);
  }
  Status bg_status = background.get();
  EXPECT_TRUE(bg_status.IsOverloaded()) << bg_status;
  EXPECT_EQ(MetricValue("admission.rejected.background"), bg_rejected_before + 1);

  // The same call at foreground priority is admitted (depth 2 < 4).
  auto foreground = server->CallAsync([]() { return Status::Ok(); }, on_fault);
  release.set_value();
  EXPECT_TRUE(blocker.get().ok());
  EXPECT_TRUE(filler1.get().ok());
  EXPECT_TRUE(filler2.get().ok());
  EXPECT_TRUE(foreground.get().ok());
}

// --- retry storm under shared-directory contention ---------------------------

TEST(OverloadTest, RetryBudgetBoundsRetryAmplification) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.tafdb.enable_delta_records = false;  // keep the contention un-sidesteppable
  options.retry.max_attempts = 64;
  options.retry.base_backoff_nanos = 10'000;
  options.retry.max_backoff_nanos = 200'000;
  options.retry_budget.enabled = true;
  options.retry_budget.max_tokens = 8.0;
  options.retry_budget.initial_tokens = 8.0;
  options.retry_budget.earn_per_success = 0.5;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/hot").ok());

  // Jam the shared directory: a foreign lock on the parent attribute row
  // makes every child mkdir abort and retry.
  auto parent_row = service.tafdb()->LocalGet(EntryKey(kRootId, "hot"));
  ASSERT_TRUE(parent_row.has_value());
  const InodeId pid = parent_row->id;
  Shard* shard = service.tafdb()->shard_map()->Route(pid);
  ASSERT_TRUE(shard->TryLockKey(AttrKey(pid), 99999));

  const uint64_t spent_before = MetricValue("retry.budget.spent");
  const uint64_t denied_before = MetricValue("retry.budget.denied");
  std::atomic<int> overloaded{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < 3; ++i) {
        OpResult result =
            service.Mkdir("/hot/d" + std::to_string(t) + "_" + std::to_string(i));
        if (result.status.IsOverloaded()) {
          overloaded.fetch_add(1);
        }
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }

  // Fleet-wide amplification bound: with zero successes during the storm the
  // whole client spends at most its initial bucket, not 12 ops x 64 attempts.
  const uint64_t spent = MetricValue("retry.budget.spent") - spent_before;
  EXPECT_LE(spent, 8u) << "retry amplification escaped the budget";
  EXPECT_GT(MetricValue("retry.budget.denied"), denied_before);
  EXPECT_GT(overloaded.load(), 0);

  // First attempts stay free: once the contention clears, an empty bucket
  // does not block new work, and successes refill it.
  shard->UnlockKey(AttrKey(pid), 99999);
  EXPECT_TRUE(service.Mkdir("/hot/after").ok());
}

// --- circuit breaker: trip, fast-fail, half-open, recover --------------------

TEST(OverloadTest, BreakerTripsHalfOpensAndRecovers) {
  NetworkOptions net_options = FastNetworkOptions();
  net_options.breaker.failure_threshold = 3;
  net_options.breaker.open_nanos = 80'000'000;  // 80 ms
  net_options.breaker.half_open_successes = 1;
  Network network(net_options);
  ServerExecutor* server = network.AddServer("flaky-db", 1);

  std::atomic<bool> slow{true};
  auto handler = [&slow]() {
    if (slow.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return Status::Ok();
  };
  auto on_fault = [](const Status& fault) { return fault; };

  const uint64_t trip_before = MetricValue("breaker.trip");
  const uint64_t fastfail_before = MetricValue("breaker.fastfail");
  const uint64_t close_before = MetricValue("breaker.close");
  // Three consecutive timeouts (2 ms deadline vs 20 ms handler) trip it.
  for (int i = 0; i < 3; ++i) {
    Status status = server->Call(handler, on_fault, 2'000'000);
    ASSERT_EQ(status.code(), StatusCode::kTimeout) << status;
  }
  EXPECT_EQ(server->breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(MetricValue("breaker.trip"), trip_before + 1);

  // While open: fail fast with kOverloaded, without touching the server.
  Status fast = server->Call(handler, on_fault, 2'000'000);
  EXPECT_TRUE(fast.IsOverloaded()) << fast;
  EXPECT_GT(MetricValue("breaker.fastfail"), fastfail_before);

  // After the cooling-off window the half-open probe heals the link.
  slow.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(110));
  Status probe = server->Call(handler, on_fault, 500'000'000);
  EXPECT_TRUE(probe.ok()) << probe;
  EXPECT_EQ(server->breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(MetricValue("breaker.close"), close_before + 1);
}

// --- hedged reads ------------------------------------------------------------

MantleOptions HedgeMantleOptions() {
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 2'000'000'000;  // paused replicas must not hang ops
  options.index.hedge.enable = true;
  options.index.hedge.quantile = 0.5;
  options.index.hedge.min_samples = 4;
  options.index.hedge.min_delay_nanos = 200'000;    // 0.2 ms
  options.index.hedge.max_delay_nanos = 5'000'000;  // 5 ms
  return options;
}

TEST(OverloadTest, HedgedReadWinsUnderSlowReplica) {
  Network network(FastNetworkOptions());
  MantleService service(&network, HedgeMantleOptions());
  ASSERT_TRUE(service.Mkdir("/h").ok());
  // Warm the latency estimator past min_samples.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.StatDir("/h").ok());
  }
  ASSERT_GE(service.index()->read_latency().samples(), 4);

  // SIGSTOP the read primary's service port. Pause matches server names
  // exactly, so "<node>-raft" keeps serving and follower read fences still
  // work - the precise stall hedging targets. The hedge must answer.
  RaftNode* leader = service.index()->group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  network.faults().PauseServer(leader->server()->name());

  const uint64_t issued_before = MetricValue("hedge.issued");
  const uint64_t won_before = MetricValue("hedge.won");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(service.StatDir("/h").ok()) << i;
  }
  EXPECT_GT(MetricValue("hedge.issued"), issued_before);
  EXPECT_GT(MetricValue("hedge.won"), won_before);

  network.faults().ResumeServer(leader->server()->name());
}

TEST(OverloadTest, HedgingIsBoundedByTheRetryBudget) {
  Network network(FastNetworkOptions());
  MantleOptions options = HedgeMantleOptions();
  options.retry_budget.enabled = true;
  options.retry_budget.max_tokens = 4.0;
  options.retry_budget.initial_tokens = 0.0;  // bucket starts dry: no hedges
  options.retry_budget.earn_per_success = 0.0;
  MantleService service(&network, options);
  ASSERT_TRUE(service.Mkdir("/hb").ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.StatDir("/hb").ok());
  }

  RaftNode* leader = service.index()->group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  network.faults().PauseServer(leader->server()->name());

  const uint64_t denied_before = MetricValue("hedge.denied");
  const uint64_t issued_before = MetricValue("hedge.issued");
  // The lookup still resolves - the degraded-read fallback path takes over
  // once the hedged read reports the primary timeout - but no hedge may be
  // issued on a dry budget.
  OpResult result = service.StatDir("/hb");
  EXPECT_TRUE(result.ok() || result.status.code() == StatusCode::kTimeout)
      << result.status;
  EXPECT_GT(MetricValue("hedge.denied"), denied_before);
  EXPECT_EQ(MetricValue("hedge.issued"), issued_before);

  network.faults().ResumeServer(leader->server()->name());
}

}  // namespace
}  // namespace mantle
