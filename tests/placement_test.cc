// Heat-aware shard placement & live migration (src/placement/).
//
// Covers the placement table and heat tracker in isolation, the migration
// protocol end to end against a live TafDb (including under a concurrent 2PC
// write load), crash injection at every armed point with Recover(), chaos
// (dropped/delayed copy traffic), stale-router bounces, and the full seeded
// hotspot drill through MantleService with an Fsck audit afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/placement/heat_tracker.h"
#include "src/placement/placement_table.h"
#include "src/placement/shard_migrator.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

bool WaitFor(const std::function<bool()>& predicate, int64_t timeout_nanos) {
  const int64_t deadline = MonotonicNanos() + timeout_nanos;
  while (MonotonicNanos() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

MetaValue ObjValue(InodeId id, uint64_t size) {
  return MetaValue{EntryType::kObject, id, kPermAll, size, 0, 0, 0, 0};
}

WriteOp PutOp(const MetaKey& key, const MetaValue& value) {
  WriteOp op;
  op.kind = WriteOp::Kind::kPut;
  op.key = key;
  op.value = value;
  return op;
}

// --- PlacementTable -----------------------------------------------------------

TEST(PlacementTableTest, InitialRoundRobinAtEpochOne) {
  PlacementTable table(8, 3);
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.moves(), 0u);
  for (uint32_t i = 0; i < 8; ++i) {
    const auto entry = table.Get(i);
    EXPECT_EQ(entry.server, i % 3);
    EXPECT_EQ(entry.epoch, 1u);
  }
}

TEST(PlacementTableTest, CommitMoveAdvancesEpoch) {
  PlacementTable table(8, 3);
  const uint64_t epoch = table.CommitMove(2, 0);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(table.epoch(), 2u);
  EXPECT_EQ(table.moves(), 1u);
  EXPECT_EQ(table.Get(2).server, 0u);
  EXPECT_EQ(table.Get(2).epoch, 2u);
  // Untouched slots keep their original assignment and epoch.
  EXPECT_EQ(table.Get(1).server, 1u);
  EXPECT_EQ(table.Get(1).epoch, 1u);
}

TEST(PlacementTableTest, ShardsOnTracksAssignments) {
  PlacementTable table(6, 2);
  EXPECT_EQ(table.ShardsOn(0), (std::vector<uint32_t>{0, 2, 4}));
  table.CommitMove(2, 1);
  EXPECT_EQ(table.ShardsOn(0), (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(table.ShardsOn(1), (std::vector<uint32_t>{1, 2, 3, 5}));
}

// --- ShardHeatTracker ---------------------------------------------------------

TEST(HeatTrackerTest, RatesTrackObservedOps) {
  Shard hot(0);
  Shard cold(1);
  hot.LoadPut(EntryKey(7, "x"), ObjValue(1, 10));
  const auto shard_at = [&](uint32_t i) -> const Shard* { return i == 0 ? &hot : &cold; };

  ShardHeatTracker tracker(2);
  tracker.Sample(shard_at);  // baseline only
  EXPECT_EQ(tracker.samples(), 1u);
  EXPECT_EQ(tracker.Heat(0).op_rate, 0.0);

  for (int i = 0; i < 5000; ++i) {
    hot.Get(EntryKey(7, "x"));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tracker.Sample(shard_at);

  EXPECT_GT(tracker.Heat(0).op_rate, 0.0);
  EXPECT_EQ(tracker.Heat(1).op_rate, 0.0);
  EXPECT_GT(tracker.Score(0), tracker.Score(1));
  EXPECT_EQ(tracker.Heat(0).rows, 1u);

  PlacementTable table(2, 2);  // shard 0 -> server 0, shard 1 -> server 1
  const std::vector<double> scores = tracker.ServerScores(table);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(HeatTrackerTest, ConflictsWeighHeavierThanOps) {
  Shard contended(0);
  Shard busy(1);
  const auto shard_at = [&](uint32_t i) -> const Shard* {
    return i == 0 ? &contended : &busy;
  };
  ShardHeatTracker tracker(2);
  tracker.Sample(shard_at);

  // Equal op counts, but shard 0 also takes lock conflicts.
  for (int i = 0; i < 200; ++i) {
    contended.Get(EntryKey(1, "k"));
    busy.Get(EntryKey(1, "k"));
  }
  ASSERT_TRUE(contended.TryLockKey(EntryKey(1, "k"), 1));
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(contended.TryLockKey(EntryKey(1, "k"), 2));
  }
  contended.UnlockKey(EntryKey(1, "k"), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tracker.Sample(shard_at);

  EXPECT_GT(tracker.Heat(0).conflict_rate, 0.0);
  EXPECT_GT(tracker.Score(0), tracker.Score(1) * 2);
}

// --- TafDb options validation (no UB on zero shards / empty fleet) -----------

TEST(PlacementOptionsTest, ValidateRejectsDegenerateConfigs) {
  TafDbOptions ok = FastTafDbOptions();
  EXPECT_TRUE(TafDb::ValidateOptions(ok).ok());

  TafDbOptions no_shards = ok;
  no_shards.num_shards = 0;
  EXPECT_TRUE(TafDb::ValidateOptions(no_shards) == Status::InvalidArgument());

  TafDbOptions no_servers = ok;
  no_servers.num_servers = 0;
  EXPECT_TRUE(TafDb::ValidateOptions(no_servers) == Status::InvalidArgument());

  TafDbOptions no_workers = ok;
  no_workers.workers_per_server = 0;
  EXPECT_TRUE(TafDb::ValidateOptions(no_workers) == Status::InvalidArgument());
}

TEST(PlacementOptionsTest, InvalidConfigFailsClosedInsteadOfCrashing) {
  Network network(FastNetworkOptions());
  TafDbOptions bad = FastTafDbOptions();
  bad.num_shards = 0;  // would previously reach RouteHash % 0
  TafDb db(&network, bad);

  EXPECT_TRUE(db.init_status() == Status::InvalidArgument());
  EXPECT_TRUE(db.Get(EntryKey(1, "a")).status() == Status::InvalidArgument());
  EXPECT_TRUE(db.Execute({PutOp(EntryKey(1, "a"), ObjValue(1, 1))}) == Status::InvalidArgument());
  auto multi = db.MultiGet(std::vector<MetaKey>{EntryKey(1, "a"), EntryKey(2, "b")});
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_TRUE(multi[0].status() == Status::InvalidArgument());
  EXPECT_TRUE(multi[1].status() == Status::InvalidArgument());
  EXPECT_TRUE(db.ListChildren(1).status() == Status::InvalidArgument());
}

// --- TafDb-level migration ----------------------------------------------------

class PlacementMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    TafDbOptions options = FastTafDbOptions();
    options.start_compactor = false;
    db_ = std::make_unique<TafDb>(network_.get(), options);
  }

  // A pid routed to `shard_index` (distinct pids per call via `salt`).
  InodeId PidOnShard(uint32_t shard_index, uint64_t salt = 0) {
    for (InodeId pid = 2 + salt * 100'000; ; ++pid) {
      if (db_->shard_map()->ShardIndex(pid) == shard_index) {
        return pid;
      }
    }
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<TafDb> db_;
};

TEST_F(PlacementMigrationTest, MigrationPreservesEveryRowAndBumpsEpoch) {
  const uint32_t shard = 0;
  const InodeId pid = PidOnShard(shard);
  for (int i = 0; i < 1000; ++i) {
    db_->LoadPut(EntryKey(pid, "row" + std::to_string(i)), ObjValue(100 + i, i));
  }
  ShardMap* map = db_->shard_map();
  const Shard* source = map->ShardAt(shard);
  const uint32_t old_server = map->placement().Get(shard).server;
  const uint32_t target = (old_server + 1) % 2;
  const uint64_t old_epoch = map->placement().epoch();

  ASSERT_TRUE(db_->placement().MigrateShard(shard, target).ok());

  EXPECT_EQ(map->placement().Get(shard).server, target);
  EXPECT_GT(map->placement().epoch(), old_epoch);
  EXPECT_TRUE(source->IsRetired());
  EXPECT_NE(map->ShardAt(shard), source);
  EXPECT_FALSE(map->ShardAt(shard)->WriteFenced());
  for (int i = 0; i < 1000; ++i) {
    auto row = db_->Get(EntryKey(pid, "row" + std::to_string(i)));
    ASSERT_TRUE(row.ok()) << "row " << i << ": " << row.status().ToString();
    EXPECT_EQ(row->size, static_cast<uint64_t>(i));
  }
  // Migrating to the server it is already on is an argument error.
  EXPECT_TRUE(db_->placement().MigrateShard(shard, target) == Status::InvalidArgument());
  EXPECT_TRUE(db_->placement().MigrateShard(999, 0) == Status::InvalidArgument());
  EXPECT_TRUE(db_->placement().MigrateShard(shard, 999) == Status::InvalidArgument());
}

TEST_F(PlacementMigrationTest, RoutingIsDeterministicAcrossEpochs) {
  // Satellite: pid -> shard-index routing must not depend on placement.
  ShardMap* map = db_->shard_map();
  std::vector<uint32_t> before;
  for (InodeId pid = 1; pid <= 512; ++pid) {
    before.push_back(map->ShardIndex(pid));
  }
  for (uint32_t shard = 0; shard < 4; ++shard) {
    const uint32_t target = (map->placement().Get(shard).server + 1) % 2;
    ASSERT_TRUE(db_->placement().MigrateShard(shard, target).ok());
  }
  ASSERT_GT(map->placement().epoch(), 1u);
  for (InodeId pid = 1; pid <= 512; ++pid) {
    EXPECT_EQ(map->ShardIndex(pid), before[pid - 1]) << "pid " << pid;
  }
}

TEST_F(PlacementMigrationTest, StaleRouterBouncesWithWrongShard) {
  const uint32_t shard = 3;
  const InodeId pid = PidOnShard(shard);
  db_->LoadPut(EntryKey(pid, "k"), ObjValue(5, 55));

  // A router resolves BEFORE the move and holds the raw pointer across it.
  ShardMap::Routing stale = db_->shard_map()->Resolve(shard);
  const uint32_t target = (db_->shard_map()->placement().Get(shard).server + 1) % 2;
  ASSERT_TRUE(db_->placement().MigrateShard(shard, target).ok());

  // Guarded entry points on the retired object bounce retriably.
  Status bounced = stale.shard->CheckAndApply({PutOp(EntryKey(pid, "k"), ObjValue(5, 56))});
  EXPECT_TRUE(bounced.IsWrongShard());
  EXPECT_TRUE(bounced.IsRetriable());
  EXPECT_FALSE(stale.shard->TryLockKey(EntryKey(pid, "k"), 42));
  EXPECT_TRUE(stale.shard->CompactDeltas(pid, {}, 0, 0).IsWrongShard());

  // The write never landed on the stale copy; the live path re-routes.
  EXPECT_EQ(db_->Get(EntryKey(pid, "k"))->size, 55u);
  ASSERT_TRUE(db_->Execute({PutOp(EntryKey(pid, "k"), ObjValue(5, 56))}).ok());
  EXPECT_EQ(db_->Get(EntryKey(pid, "k"))->size, 56u);
}

TEST_F(PlacementMigrationTest, MigrationUnderConcurrent2pcLosesNoAckedWrite) {
  constexpr int kWriters = 4;
  constexpr int kWritesPerWriter = 150;
  ShardMap* map = db_->shard_map();

  // Distinct pids per writer; each transaction spans two pids so a good
  // fraction of the load is cross-shard 2PC racing the migrations.
  std::vector<InodeId> pids;
  for (int w = 0; w < kWriters; ++w) {
    pids.push_back(PidOnShard(static_cast<uint32_t>(w * 2), w + 1));
    pids.push_back(PidOnShard(static_cast<uint32_t>(w * 2 + 1), w + 10));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w]() {
      const InodeId a = pids[w * 2];
      const InodeId b = pids[w * 2 + 1];
      for (int i = 0; i < kWritesPerWriter && !failed.load(); ++i) {
        const std::vector<WriteOp> ops = {
            PutOp(EntryKey(a, "w" + std::to_string(i)), ObjValue(1, i)),
            PutOp(EntryKey(b, "w" + std::to_string(i)), ObjValue(2, i)),
        };
        bool acked = false;
        for (int attempt = 0; attempt < 200; ++attempt) {
          const Status status = db_->Execute(ops);
          if (status.ok()) {
            acked = true;
            break;
          }
          if (!status.IsRetriable() && !(status == Status::Timeout())) {
            ADD_FAILURE() << "non-retriable failure: " << status.ToString();
            failed.store(true);
            break;
          }
        }
        if (!acked && !failed.load()) {
          ADD_FAILURE() << "write never acked after bounded retries";
          failed.store(true);
        }
      }
    });
  }

  // Migrate every writer-touched shard (plus back again) while writes fly.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t shard = 0; shard < db_->shard_map()->num_shards(); ++shard) {
      const uint32_t target = (map->placement().Get(shard).server + 1) % 2;
      const Status status = db_->placement().MigrateShard(shard, target);
      EXPECT_TRUE(status.ok() || status.IsRetriable()) << status.ToString();
    }
  }
  for (auto& t : writers) {
    t.join();
  }
  ASSERT_FALSE(failed.load());

  // Every acked write is durable and visible through the current placement.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kWritesPerWriter; ++i) {
      for (int half = 0; half < 2; ++half) {
        const InodeId pid = pids[w * 2 + half];
        auto row = db_->Get(EntryKey(pid, "w" + std::to_string(i)));
        ASSERT_TRUE(row.ok()) << "lost acked write pid=" << pid << " i=" << i << ": "
                              << row.status().ToString();
        EXPECT_EQ(row->size, static_cast<uint64_t>(i));
      }
    }
  }
  // No transaction spans a move: nothing is left prepared or fenced anywhere.
  for (uint32_t shard = 0; shard < map->num_shards(); ++shard) {
    EXPECT_EQ(map->ShardAt(shard)->HeldLockCount(), 0u) << "shard " << shard;
    EXPECT_FALSE(map->ShardAt(shard)->WriteFenced()) << "shard " << shard;
  }
}

// --- crash injection ----------------------------------------------------------

TEST_F(PlacementMigrationTest, CrashMidCopyLeavesSourceAuthoritative) {
  const uint32_t shard = 1;
  const InodeId pid = PidOnShard(shard);
  for (int i = 0; i < 200; ++i) {
    db_->LoadPut(EntryKey(pid, "r" + std::to_string(i)), ObjValue(1, i));
  }
  ShardMap* map = db_->shard_map();
  const Shard* source = map->ShardAt(shard);
  const uint32_t old_server = map->placement().Get(shard).server;
  const uint32_t target = (old_server + 1) % 2;

  db_->placement().migrator().ArmCrash(MigrationCrashPoint::kMidCopy);
  EXPECT_TRUE(db_->placement().MigrateShard(shard, target).IsAborted());

  // Old placement untouched: same object, same server, no fence, no epoch.
  EXPECT_EQ(map->ShardAt(shard), source);
  EXPECT_EQ(map->placement().Get(shard).server, old_server);
  EXPECT_FALSE(source->IsRetired());
  EXPECT_FALSE(source->WriteFenced());

  db_->placement().migrator().Recover(shard);
  ASSERT_TRUE(db_->Execute({PutOp(EntryKey(pid, "post-crash"), ObjValue(9, 99))}).ok());

  // A fresh attempt completes and carries both old and post-crash rows.
  ASSERT_TRUE(db_->placement().MigrateShard(shard, target).ok());
  EXPECT_EQ(db_->Get(EntryKey(pid, "r7"))->size, 7u);
  EXPECT_EQ(db_->Get(EntryKey(pid, "post-crash"))->size, 99u);
}

TEST_F(PlacementMigrationTest, CrashMidCutoverRecoversWithFenceLifted) {
  const uint32_t shard = 2;
  const InodeId pid = PidOnShard(shard);
  for (int i = 0; i < 100; ++i) {
    db_->LoadPut(EntryKey(pid, "r" + std::to_string(i)), ObjValue(1, i));
  }
  ShardMap* map = db_->shard_map();
  Shard* source = map->ShardAt(shard);
  const uint32_t old_server = map->placement().Get(shard).server;
  const uint32_t target = (old_server + 1) % 2;

  db_->placement().migrator().ArmCrash(MigrationCrashPoint::kMidCutover);
  EXPECT_TRUE(db_->placement().MigrateShard(shard, target).IsAborted());

  // Crash point is one instant before commit: fence still up, cutover never
  // happened, source still the only authoritative copy.
  EXPECT_EQ(map->ShardAt(shard), source);
  EXPECT_EQ(map->placement().Get(shard).server, old_server);
  EXPECT_FALSE(source->IsRetired());
  EXPECT_TRUE(source->WriteFenced());
  EXPECT_TRUE(source->CheckAndApply({PutOp(EntryKey(pid, "x"), ObjValue(1, 1))}).IsBusy());

  db_->placement().migrator().Recover(shard);
  EXPECT_FALSE(source->WriteFenced());
  ASSERT_TRUE(db_->Execute({PutOp(EntryKey(pid, "resumed"), ObjValue(3, 33))}).ok());

  ASSERT_TRUE(db_->placement().MigrateShard(shard, target).ok());
  EXPECT_EQ(map->placement().Get(shard).server, target);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(db_->Get(EntryKey(pid, "r" + std::to_string(i)))->size,
              static_cast<uint64_t>(i));
  }
  EXPECT_EQ(db_->Get(EntryKey(pid, "resumed"))->size, 33u);
}

TEST_F(PlacementMigrationTest, CrashBeforeFenceRecovers) {
  const uint32_t shard = 4;
  const InodeId pid = PidOnShard(shard);
  db_->LoadPut(EntryKey(pid, "a"), ObjValue(1, 1));
  const uint32_t target = (db_->shard_map()->placement().Get(shard).server + 1) % 2;

  db_->placement().migrator().ArmCrash(MigrationCrashPoint::kBeforeFence);
  EXPECT_TRUE(db_->placement().MigrateShard(shard, target).IsAborted());
  EXPECT_FALSE(db_->shard_map()->ShardAt(shard)->WriteFenced());

  db_->placement().migrator().Recover(shard);
  ASSERT_TRUE(db_->placement().MigrateShard(shard, target).ok());
  EXPECT_EQ(db_->Get(EntryKey(pid, "a"))->size, 1u);
}

// --- chaos: drops and delays on the copy path ---------------------------------

TEST_F(PlacementMigrationTest, ChaosMigrationAbortsCleanlyOrCompletes) {
  const uint32_t shard = 5;
  const InodeId pid = PidOnShard(shard);
  for (int i = 0; i < 600; ++i) {
    db_->LoadPut(EntryKey(pid, "r" + std::to_string(i)), ObjValue(1, i));
  }
  ShardMap* map = db_->shard_map();

  // Short per-RPC deadline so dropped copy traffic aborts fast.
  MigrationOptions chaos_options;
  chaos_options.copy_batch_rows = 64;  // many pages -> many chances to drop
  chaos_options.rpc_deadline_nanos = 20'000'000;  // 20 ms
  ShardMigrator migrator(map, db_->network(), chaos_options);

  FaultRule flaky;
  flaky.drop_probability = 0.25;
  flaky.delay_probability = 0.25;
  flaky.delay_nanos = 2'000'000;
  db_->network()->faults().SetRule("tafdb-0", flaky);
  db_->network()->faults().SetRule("tafdb-1", flaky);

  bool committed = false;
  for (int attempt = 0; attempt < 10 && !committed; ++attempt) {
    const uint32_t target = (map->placement().Get(shard).server + 1) % 2;
    const Status status = migrator.Migrate(shard, target);
    if (status.ok()) {
      committed = true;
    } else {
      // Aborts are clean: source authoritative, unfenced, still writable.
      EXPECT_FALSE(map->ShardAt(shard)->IsRetired());
      EXPECT_FALSE(map->ShardAt(shard)->WriteFenced());
    }
  }
  db_->network()->faults().ClearAll();

  // Whatever happened above, the data survived and the shard still migrates.
  if (!committed) {
    const uint32_t target = (map->placement().Get(shard).server + 1) % 2;
    ASSERT_TRUE(migrator.Migrate(shard, target).ok());
  }
  for (int i = 0; i < 600; ++i) {
    auto row = db_->Get(EntryKey(pid, "r" + std::to_string(i)));
    ASSERT_TRUE(row.ok()) << "row " << i << ": " << row.status().ToString();
    EXPECT_EQ(row->size, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(db_->Execute({PutOp(EntryKey(pid, "after"), ObjValue(2, 7))}).ok());
  EXPECT_EQ(db_->Get(EntryKey(pid, "after"))->size, 7u);
}

// --- hotspot drill through MantleService --------------------------------------

TEST(PlacementDrillTest, SupervisorMigratesShardsOffHotServerAndFsckStaysClean) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.tafdb.start_compactor = false;
  // Aggressive supervisor so the drill converges in test time.
  options.tafdb.placement.poll_interval_nanos = 2'000'000;      // 2 ms
  options.tafdb.placement.confirm_window_nanos = 5'000'000;     // 5 ms
  options.tafdb.placement.cooldown_nanos = 5'000'000;           // 5 ms
  options.tafdb.placement.skew_threshold = 1.2;
  options.tafdb.placement.min_hot_score = 10.0;
  MantleService service(&network, options);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.Mkdir("/d" + std::to_string(i)).ok());
    ASSERT_TRUE(service.CreateObject("/d" + std::to_string(i) + "/obj", 64).ok());
  }

  TafDb* db = service.tafdb();
  ShardMap* map = db->shard_map();
  // Seeded hotspot: hammer keys on every shard resident on server 0.
  std::vector<InodeId> hot_pids;
  for (InodeId pid = 2; hot_pids.size() < 4 && pid < 100'000; ++pid) {
    const uint32_t shard = map->ShardIndex(pid);
    if (map->placement().Get(shard).server == 0) {
      hot_pids.push_back(pid);
      db->LoadPut(EntryKey(pid, "hotrow"), ObjValue(pid, 1));
    }
  }
  ASSERT_EQ(hot_pids.size(), 4u);

  const std::set<uint32_t> hot_shards_before = [&] {
    std::set<uint32_t> s;
    for (const InodeId pid : hot_pids) {
      s.insert(map->ShardIndex(pid));
    }
    return s;
  }();

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 3; ++t) {
    hammers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        for (const InodeId pid : hot_pids) {
          auto row = db->Get(EntryKey(pid, "hotrow"));
          ASSERT_TRUE(row.ok()) << row.status().ToString();
        }
      }
    });
  }

  service.EnableShardAutoPlacement();
  const bool migrated = WaitFor(
      [&]() {
        return service.shard_placement()->stats().migrations.load(std::memory_order_relaxed) >= 1;
      },
      20'000'000'000);  // 20 s
  stop.store(true, std::memory_order_release);
  for (auto& t : hammers) {
    t.join();
  }
  service.DisableShardAutoPlacement();
  ASSERT_TRUE(migrated) << "supervisor never migrated; samples="
                        << service.shard_placement()->stats().samples.load()
                        << " skew=" << service.shard_placement()->stats().skew_detected.load();
  EXPECT_GE(service.shard_placement()->stats().skew_detected.load(), 1u);

  // At least one formerly-hot shard left server 0, and nothing was lost.
  size_t moved = 0;
  for (const uint32_t shard : hot_shards_before) {
    if (map->placement().Get(shard).server != 0) {
      ++moved;
    }
  }
  EXPECT_GE(moved, 1u);
  for (const InodeId pid : hot_pids) {
    EXPECT_EQ(db->Get(EntryKey(pid, "hotrow"))->size, 1u);
  }
  for (int i = 0; i < 20; ++i) {
    auto stat = service.StatObject("/d" + std::to_string(i) + "/obj");
    EXPECT_TRUE(stat.ok()) << stat.status.ToString();
  }

  // The namespace survives the reshuffle with full index/DB agreement.
  auto report = service.Fsck();
  EXPECT_TRUE(report.clean()) << "entry=" << report.missing_entry_row.size()
                              << " id=" << report.id_mismatch.size()
                              << " attr=" << report.missing_attr_row.size()
                              << " unindexed=" << report.unindexed_dir_row.size();

  // Satellite: per-shard gauges are exported by DumpStats.
  const std::string stats = service.DumpStats();
  EXPECT_NE(stats.find("tafdb.shard.rows"), std::string::npos);
  EXPECT_NE(stats.find("tafdb.shard.ops"), std::string::npos);
  EXPECT_NE(stats.find("placement.epoch"), std::string::npos);
  EXPECT_GT(obs::Metrics::Instance().GetGauge("tafdb.shard.rows")->Value(), 0);
}

TEST(PlacementDrillTest, DirectDrillMigrationKeepsFsckClean) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  MantleService service(&network, options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.Mkdir("/m" + std::to_string(i)).ok());
    ASSERT_TRUE(service.CreateObject("/m" + std::to_string(i) + "/o", 8).ok());
  }
  ShardMap* map = service.tafdb()->shard_map();
  for (uint32_t shard = 0; shard < map->num_shards(); ++shard) {
    const uint32_t target = (map->placement().Get(shard).server + 1) % 2;
    ASSERT_TRUE(service.MigrateTafDbShard(shard, target).ok()) << "shard " << shard;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service.StatObject("/m" + std::to_string(i) + "/o").ok());
  }
  EXPECT_TRUE(service.Fsck().clean());
}

}  // namespace
}  // namespace mantle
