// Property-based model checking: random operation sequences run against both
// a reference in-memory filesystem model and each MetadataService; outcomes
// and final namespace state must agree. Parameterized over (system, seed) so
// every system faces multiple independent random programs.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "src/common/path.h"
#include "src/common/random.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// --- reference model -----------------------------------------------------------

class ModelFs {
 public:
  ModelFs() { dirs_.insert("/"); }

  Status Mkdir(const std::string& path) {
    if (path == "/") {
      return Status::AlreadyExists("/");
    }
    if (Exists(path)) {
      return Status::AlreadyExists(path);
    }
    if (!dirs_.contains(ParentPath(path))) {
      return ParentMissingError(path);
    }
    dirs_.insert(path);
    return Status::Ok();
  }

  Status CreateObject(const std::string& path, uint64_t size) {
    if (Exists(path)) {
      return Status::AlreadyExists(path);
    }
    if (!dirs_.contains(ParentPath(path))) {
      return ParentMissingError(path);
    }
    objects_[path] = size;
    return Status::Ok();
  }

  Status DeleteObject(const std::string& path) {
    if (!dirs_.contains(ParentPath(path))) {
      return ParentMissingError(path);
    }
    return objects_.erase(path) > 0 ? Status::Ok() : Status::NotFound(path);
  }

  Status Rmdir(const std::string& path) {
    if (path == "/") {
      return Status::InvalidArgument("cannot remove the root");
    }
    if (!dirs_.contains(path)) {
      return dirs_.contains(ParentPath(path)) ? Status::NotFound(path)
                                              : ParentMissingError(path);
    }
    if (HasChildren(path)) {
      return Status::NotEmpty(path);
    }
    dirs_.erase(path);
    return Status::Ok();
  }

  Status RenameDir(const std::string& src, const std::string& dst) {
    if (!dirs_.contains(src)) {
      return Status::NotFound(src);
    }
    if (Exists(dst)) {
      return Status::AlreadyExists(dst);
    }
    if (!dirs_.contains(ParentPath(dst))) {
      return ParentMissingError(dst);
    }
    if (IsPathPrefix(src, ParentPath(dst)) || src == dst) {
      return Status::LoopDetected(dst);
    }
    // Move the whole subtree.
    std::set<std::string> new_dirs;
    for (auto it = dirs_.begin(); it != dirs_.end();) {
      if (IsPathPrefix(src, *it)) {
        new_dirs.insert(dst + it->substr(src.size()));
        it = dirs_.erase(it);
      } else {
        ++it;
      }
    }
    dirs_.insert(new_dirs.begin(), new_dirs.end());
    std::map<std::string, uint64_t> new_objects;
    for (auto it = objects_.begin(); it != objects_.end();) {
      if (IsPathPrefix(src, it->first)) {
        new_objects[dst + it->first.substr(src.size())] = it->second;
        it = objects_.erase(it);
      } else {
        ++it;
      }
    }
    objects_.insert(new_objects.begin(), new_objects.end());
    return Status::Ok();
  }

  bool IsDir(const std::string& path) const { return dirs_.contains(path); }
  bool IsObject(const std::string& path) const { return objects_.contains(path); }
  uint64_t ObjectSize(const std::string& path) const { return objects_.at(path); }

  std::set<std::string> Children(const std::string& dir) const {
    std::set<std::string> names;
    for (const auto& d : dirs_) {
      if (d != "/" && ParentPath(d) == dir) {
        names.insert(BaseName(d));
      }
    }
    for (const auto& [path, size] : objects_) {
      if (ParentPath(path) == dir) {
        names.insert(BaseName(path));
      }
    }
    return names;
  }

  const std::set<std::string>& dirs() const { return dirs_; }
  const std::map<std::string, uint64_t>& objects() const { return objects_; }

 private:
  bool Exists(const std::string& path) const {
    return dirs_.contains(path) || objects_.contains(path);
  }
  bool HasChildren(const std::string& dir) const { return !Children(dir).empty(); }
  // A missing intermediate component surfaces as NotFound in every system.
  static Status ParentMissingError(const std::string& path) { return Status::NotFound(path); }

  std::set<std::string> dirs_;
  std::map<std::string, uint64_t> objects_;
};

// --- harness --------------------------------------------------------------------

enum class SystemUnderTest { kMantle, kTectonic, kDbTable, kInfiniFs, kLocoFs };

const char* SutName(SystemUnderTest sut) {
  switch (sut) {
    case SystemUnderTest::kMantle:
      return "Mantle";
    case SystemUnderTest::kTectonic:
      return "Tectonic";
    case SystemUnderTest::kDbTable:
      return "DBtable";
    case SystemUnderTest::kInfiniFs:
      return "InfiniFS";
    case SystemUnderTest::kLocoFs:
      return "LocoFS";
  }
  return "?";
}

class PropertyModelTest
    : public ::testing::TestWithParam<std::tuple<SystemUnderTest, uint64_t>> {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    switch (std::get<0>(GetParam())) {
      case SystemUnderTest::kMantle:
        service_ = std::make_unique<MantleService>(network_.get(), FastMantleOptions());
        break;
      case SystemUnderTest::kTectonic:
      case SystemUnderTest::kDbTable: {
        TectonicOptions options;
        options.tafdb = FastTafDbOptions();
        options.use_distributed_txn = std::get<0>(GetParam()) == SystemUnderTest::kDbTable;
        service_ = std::make_unique<TectonicService>(network_.get(), options);
        break;
      }
      case SystemUnderTest::kInfiniFs: {
        InfiniFsOptions options;
        options.tafdb = FastTafDbOptions();
        service_ = std::make_unique<InfiniFsService>(network_.get(), options);
        break;
      }
      case SystemUnderTest::kLocoFs: {
        LocoFsOptions options;
        options.tafdb = FastTafDbOptions();
        options.raft = FastRaftOptions();
        service_ = std::make_unique<LocoFsService>(network_.get(), options);
        break;
      }
    }
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<MetadataService> service_;
};

std::string PickName(Rng& rng) { return "n" + std::to_string(rng.Uniform(6)); }

std::string PickPath(const ModelFs& model, Rng& rng, int max_extra_levels = 2) {
  // Start from a random known directory and append 0..max_extra random
  // components, producing a healthy mix of valid and invalid paths.
  std::vector<std::string> dirs(model.dirs().begin(), model.dirs().end());
  std::string path = dirs[rng.Uniform(dirs.size())];
  const uint64_t extra = rng.Uniform(max_extra_levels + 1);
  for (uint64_t i = 0; i < extra; ++i) {
    if (path == "/") {
      path.clear();
    }
    path += "/" + PickName(rng);
  }
  return path.empty() ? "/" : path;
}

TEST_P(PropertyModelTest, RandomProgramMatchesReferenceModel) {
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  ModelFs model;

  constexpr int kSteps = 300;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t action = rng.Uniform(100);
    if (action < 30) {  // mkdir
      const std::string path = PickPath(model, rng);
      Status expected = model.Mkdir(path);
      OpResult actual = service_->Mkdir(path);
      if (expected.ok()) {
        ASSERT_TRUE(actual.ok()) << SutName(std::get<0>(GetParam())) << " mkdir " << path
                                 << ": " << actual.status;
      } else {
        ASSERT_FALSE(actual.ok()) << "mkdir " << path << " should fail";
      }
    } else if (action < 55) {  // create object
      const std::string path = PickPath(model, rng);
      const uint64_t size = rng.Uniform(1 << 20) + 1;
      Status expected = model.CreateObject(path, size);
      OpResult actual = service_->CreateObject(path, size);
      ASSERT_EQ(expected.ok(), actual.ok())
          << "create " << path << " model=" << expected << " sut=" << actual.status;
    } else if (action < 65) {  // delete object
      const std::string path = PickPath(model, rng);
      Status expected = model.DeleteObject(path);
      OpResult actual = service_->DeleteObject(path);
      ASSERT_EQ(expected.ok(), actual.ok())
          << "delete " << path << " model=" << expected << " sut=" << actual.status;
    } else if (action < 75) {  // rmdir
      const std::string path = PickPath(model, rng);
      Status expected = model.Rmdir(path);
      OpResult actual = service_->Rmdir(path);
      ASSERT_EQ(expected.ok(), actual.ok())
          << "rmdir " << path << " model=" << expected << " sut=" << actual.status;
    } else if (action < 90) {  // rename
      const std::string src = PickPath(model, rng, 1);
      const std::string dst = PickPath(model, rng, 1);
      if (src == "/" || dst == "/") {
        continue;
      }
      Status expected = model.RenameDir(src, dst);
      OpResult actual = service_->RenameDir(src, dst);
      ASSERT_EQ(expected.ok(), actual.ok())
          << "rename " << src << " -> " << dst << " model=" << expected
          << " sut=" << actual.status;
    } else {  // stat probes
      const std::string path = PickPath(model, rng);
      StatResult dir_stat = service_->StatDir(path);
      ASSERT_EQ(model.IsDir(path), dir_stat.ok()) << "dirstat " << path;
      StatResult obj_stat = service_->StatObject(path);
      ASSERT_EQ(model.IsObject(path), obj_stat.ok() && !obj_stat.info.is_dir)
          << "objstat " << path;
    }
  }

  // Final-state audit: every model path visible with correct identity; model
  // directory listings match ReadDir exactly.
  for (const auto& dir : model.dirs()) {
    if (dir == "/") {
      continue;
    }
    ASSERT_TRUE(service_->StatDir(dir).ok()) << "missing dir " << dir;
  }
  for (const auto& [path, size] : model.objects()) {
    StatResult stat = service_->StatObject(path);
    ASSERT_TRUE(stat.ok()) << "missing object " << path;
    EXPECT_EQ(stat.info.size, size) << path;
  }
  Rng audit_rng(seed ^ 0xa0d17);
  std::vector<std::string> dirs(model.dirs().begin(), model.dirs().end());
  for (int probe = 0; probe < 20; ++probe) {
    const std::string& dir = dirs[audit_rng.Uniform(dirs.size())];
    std::vector<std::string> names;
    ASSERT_TRUE(service_->ReadDir(dir, &names).ok()) << dir;
    EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), model.Children(dir)) << dir;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, PropertyModelTest,
    ::testing::Combine(::testing::Values(SystemUnderTest::kMantle, SystemUnderTest::kTectonic,
                                         SystemUnderTest::kDbTable, SystemUnderTest::kInfiniFs,
                                         SystemUnderTest::kLocoFs),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<SystemUnderTest, uint64_t>>& info) {
      return std::string(SutName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mantle
