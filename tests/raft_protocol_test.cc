// Raft protocol edge cases exercised by constructing RPCs directly against
// nodes: term dominance, log-consistency rejection, conflict truncation,
// vote persistence, and ReadIndex leader checks.

#include <gtest/gtest.h>

#include <memory>

#include "src/raft/group.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

class NullMachine final : public StateMachine {
 public:
  std::string Apply(uint64_t, const std::string& command) override { return command; }
};

struct ProtoHarness {
  std::unique_ptr<Network> network;
  std::unique_ptr<RaftGroup> group;
};

ProtoHarness MakeQuietGroup(uint32_t voters) {
  // Elections disabled: nodes stay followers until poked, so tests control
  // every message.
  ProtoHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  RaftOptions options = FastRaftOptions();
  options.enable_election_timer = false;
  harness.group = std::make_unique<RaftGroup>(
      harness.network.get(), "proto", voters, 0,
      [](uint32_t) -> std::unique_ptr<StateMachine> { return std::make_unique<NullMachine>(); },
      options);
  return harness;
}

LogEntry Entry(uint64_t term, uint64_t index, const std::string& payload) {
  return LogEntry{term, index, payload};
}

TEST(RaftProtocolTest, AppendFromStaleTermRejected) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  AppendEntriesRequest fresh;
  fresh.term = 5;
  fresh.leader_id = 1;
  EXPECT_TRUE(node->HandleAppendEntries(fresh).success);
  AppendEntriesRequest stale;
  stale.term = 3;
  stale.leader_id = 2;
  AppendEntriesReply reply = node->HandleAppendEntries(stale);
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.term, 5u);
}

TEST(RaftProtocolTest, AppendRejectsMissingPrevEntry) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  AppendEntriesRequest request;
  request.term = 2;
  request.leader_id = 1;
  request.prev_log_index = 7;  // log is empty
  request.prev_log_term = 2;
  request.entries = {Entry(2, 8, "x")};
  AppendEntriesReply reply = node->HandleAppendEntries(request);
  EXPECT_FALSE(reply.success);
  EXPECT_LE(reply.match_index, 6u);  // hint for next_index backoff
}

TEST(RaftProtocolTest, ConflictingSuffixTruncated) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  // Old leader (term 2) appends 1..3.
  AppendEntriesRequest old_leader;
  old_leader.term = 2;
  old_leader.leader_id = 1;
  old_leader.entries = {Entry(2, 1, "a"), Entry(2, 2, "b"), Entry(2, 3, "c")};
  ASSERT_TRUE(node->HandleAppendEntries(old_leader).success);
  EXPECT_EQ(node->last_log_index(), 3u);
  // New leader (term 4) rewrites from index 2.
  AppendEntriesRequest new_leader;
  new_leader.term = 4;
  new_leader.leader_id = 2;
  new_leader.prev_log_index = 1;
  new_leader.prev_log_term = 2;
  new_leader.entries = {Entry(4, 2, "B")};
  AppendEntriesReply reply = node->HandleAppendEntries(new_leader);
  ASSERT_TRUE(reply.success);
  EXPECT_EQ(reply.match_index, 2u);
  EXPECT_EQ(node->last_log_index(), 2u);  // old index 3 discarded
}

TEST(RaftProtocolTest, DuplicateEntriesAreIdempotent) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  AppendEntriesRequest request;
  request.term = 2;
  request.leader_id = 1;
  request.entries = {Entry(2, 1, "a"), Entry(2, 2, "b")};
  ASSERT_TRUE(node->HandleAppendEntries(request).success);
  ASSERT_TRUE(node->HandleAppendEntries(request).success);  // retransmission
  EXPECT_EQ(node->last_log_index(), 2u);
  const uint64_t persisted = node->storage().entries_persisted();
  EXPECT_EQ(persisted, 2u);  // duplicates were not re-persisted
}

TEST(RaftProtocolTest, VoteGrantedOncePerTerm) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  RequestVoteRequest candidate1;
  candidate1.term = 3;
  candidate1.candidate_id = 1;
  EXPECT_TRUE(node->HandleRequestVote(candidate1).vote_granted);
  RequestVoteRequest candidate2 = candidate1;
  candidate2.candidate_id = 2;
  EXPECT_FALSE(node->HandleRequestVote(candidate2).vote_granted);  // already voted
  EXPECT_TRUE(node->HandleRequestVote(candidate1).vote_granted);   // same candidate ok
}

TEST(RaftProtocolTest, VoteDeniedToStaleLog) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  AppendEntriesRequest fill;
  fill.term = 2;
  fill.leader_id = 1;
  fill.entries = {Entry(2, 1, "a"), Entry(2, 2, "b")};
  ASSERT_TRUE(node->HandleAppendEntries(fill).success);
  // Candidate with a shorter log at the same last term loses.
  RequestVoteRequest behind;
  behind.term = 3;
  behind.candidate_id = 2;
  behind.last_log_index = 1;
  behind.last_log_term = 2;
  EXPECT_FALSE(node->HandleRequestVote(behind).vote_granted);
  // Candidate with a higher last term wins despite a shorter log.
  RequestVoteRequest newer;
  newer.term = 4;
  newer.candidate_id = 2;
  newer.last_log_index = 1;
  newer.last_log_term = 3;
  EXPECT_TRUE(node->HandleRequestVote(newer).vote_granted);
}

TEST(RaftProtocolTest, CommitFollowsLeaderCommitBoundedByLog) {
  ProtoHarness harness = MakeQuietGroup(3);
  RaftNode* node = harness.group->node(0);
  AppendEntriesRequest request;
  request.term = 2;
  request.leader_id = 1;
  request.leader_commit = 99;  // far beyond what we deliver
  request.entries = {Entry(2, 1, "a")};
  ASSERT_TRUE(node->HandleAppendEntries(request).success);
  EXPECT_EQ(node->commit_index(), 1u);  // min(leader_commit, last index)
}

TEST(RaftProtocolTest, ReadIndexQueryOnlyServedByLeader) {
  ProtoHarness harness = MakeQuietGroup(3);
  EXPECT_FALSE(harness.group->node(0)->HandleReadIndexQuery().has_value());
  harness.group->node(0)->Campaign();
  RaftNode* leader = harness.group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  EXPECT_TRUE(leader->HandleReadIndexQuery().has_value());
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    if (harness.group->node(i) != leader) {
      EXPECT_FALSE(harness.group->node(i)->HandleReadIndexQuery().has_value());
    }
  }
}

TEST(RaftProtocolTest, HigherTermAppendDethronesLeader) {
  ProtoHarness harness = MakeQuietGroup(3);
  harness.group->node(0)->Campaign();
  RaftNode* leader = harness.group->WaitForLeader();
  ASSERT_EQ(leader, harness.group->node(0));
  AppendEntriesRequest usurper;
  usurper.term = leader->term() + 10;
  usurper.leader_id = 2;
  EXPECT_TRUE(leader->HandleAppendEntries(usurper).success);
  EXPECT_NE(leader->role(), RaftRole::kLeader);
  EXPECT_EQ(leader->term(), usurper.term);
}

}  // namespace
}  // namespace mantle
