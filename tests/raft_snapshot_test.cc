// Raft log compaction and InstallSnapshot: lagging replicas catch up from a
// state-machine snapshot instead of replaying the whole log.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>

#include "src/common/path.h"
#include "src/index/index_service.h"
#include "src/raft/group.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// --- RaftLog compaction unit tests -------------------------------------------

TEST(RaftLogCompactionTest, CompactPrefixKeepsSuffixAndSentinel) {
  RaftLog log;
  for (uint64_t i = 1; i <= 10; ++i) {
    log.Append(LogEntry{2, i, "e" + std::to_string(i)});
  }
  log.CompactPrefix(6);
  EXPECT_EQ(log.FirstIndex(), 6u);
  EXPECT_EQ(log.LastIndex(), 10u);
  EXPECT_EQ(log.LiveEntries(), 4u);
  EXPECT_TRUE(log.Compacted(5));
  EXPECT_FALSE(log.Compacted(6));
  EXPECT_EQ(log.TermAt(6), 2u);  // sentinel keeps the term
  EXPECT_EQ(log.At(7).payload, "e7");
  auto slice = log.Slice(6, 10);
  ASSERT_EQ(slice.size(), 4u);
  EXPECT_EQ(slice[0].index, 7u);
}

TEST(RaftLogCompactionTest, CompactIsIdempotentAndBounded) {
  RaftLog log;
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(LogEntry{1, i, "x"});
  }
  log.CompactPrefix(3);
  log.CompactPrefix(3);   // no-op
  log.CompactPrefix(2);   // below first index: no-op
  log.CompactPrefix(99);  // beyond last index: no-op
  EXPECT_EQ(log.FirstIndex(), 3u);
  EXPECT_EQ(log.LastIndex(), 5u);
}

TEST(RaftLogCompactionTest, ResetToSnapshotDiscardsEverything) {
  RaftLog log;
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(LogEntry{1, i, "x"});
  }
  log.ResetToSnapshot(42, 7);
  EXPECT_EQ(log.FirstIndex(), 42u);
  EXPECT_EQ(log.LastIndex(), 42u);
  EXPECT_EQ(log.LastTerm(), 7u);
  EXPECT_EQ(log.LiveEntries(), 0u);
  log.Append(LogEntry{7, 43, "after"});
  EXPECT_EQ(log.At(43).payload, "after");
}

TEST(RaftLogCompactionTest, TruncateFromRespectsCompactionPoint) {
  RaftLog log;
  for (uint64_t i = 1; i <= 8; ++i) {
    log.Append(LogEntry{1, i, "x"});
  }
  log.CompactPrefix(4);
  log.TruncateFrom(6);
  EXPECT_EQ(log.LastIndex(), 5u);
  log.TruncateFrom(2);  // below the sentinel: ignored
  EXPECT_EQ(log.FirstIndex(), 4u);
  EXPECT_EQ(log.LastIndex(), 5u);
}

// --- snapshottable machine for group tests ------------------------------------

class SetMachine final : public StateMachine {
 public:
  std::string Apply(uint64_t, const std::string& command) override {
    std::lock_guard<std::mutex> lock(mu_);
    values_.insert(command);
    return command;
  }
  std::string Snapshot() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "S";  // non-empty even when the set is
    for (const auto& value : values_) {
      out += value;
      out += '\n';
    }
    return out;
  }
  void Restore(const std::string& snapshot) override {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
    size_t pos = 1;  // skip the header byte
    while (pos < snapshot.size()) {
      const size_t end = snapshot.find('\n', pos);
      values_.insert(snapshot.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  std::set<std::string> values() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::string> values_;
};

struct SnapHarness {
  std::unique_ptr<Network> network;
  // Heap-allocated and shared with the factory lambda: the factory outlives
  // this scope's moves (AddLearner invokes it at runtime with fresh ids), so
  // it must not hold a reference into the movable harness object.
  std::shared_ptr<std::vector<SetMachine*>> machines =
      std::make_shared<std::vector<SetMachine*>>();
  std::unique_ptr<RaftGroup> group;

  SetMachine* machine(uint32_t id) const {
    return id < machines->size() ? (*machines)[id] : nullptr;
  }
};

SnapHarness MakeSnapGroup(uint64_t threshold) {
  SnapHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  RaftOptions options = FastRaftOptions();
  options.snapshot_threshold_entries = threshold;
  harness.machines->resize(3, nullptr);
  harness.group = std::make_unique<RaftGroup>(
      harness.network.get(), "snap", 3, 0,
      [machines = harness.machines](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto machine = std::make_unique<SetMachine>();
        // AddLearner invokes the factory with fresh ids past the initial 3.
        if (id >= machines->size()) {
          machines->resize(id + 1, nullptr);
        }
        (*machines)[id] = machine.get();
        return machine;
      },
      options);
  harness.group->Start();
  return harness;
}

TEST(RaftSnapshotTest, LeaderCompactsItsLogPastThreshold) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/16);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(harness.group->Propose("v" + std::to_string(i)).ok());
  }
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  const int64_t deadline = MonotonicNanos() + 5'000'000'000;
  while (leader->stats().snapshots_taken.load() == 0 && MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(leader->stats().snapshots_taken.load(), 0u);
}

TEST(RaftSnapshotTest, LaggingFollowerCatchesUpViaSnapshot) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/16);
  ASSERT_TRUE(harness.group->Propose("before").ok());
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  RaftNode* follower = nullptr;
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    if (harness.group->node(i) != leader) {
      follower = harness.group->node(i);
      break;
    }
  }
  ASSERT_NE(follower, nullptr);
  follower->Stop();

  // Write far past the threshold so the leader compacts beyond what the
  // stopped follower holds.
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(harness.group->Propose("w" + std::to_string(i)).ok());
  }
  const int64_t compact_deadline = MonotonicNanos() + 5'000'000'000;
  while (leader->stats().snapshots_taken.load() == 0 &&
         MonotonicNanos() < compact_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(leader->stats().snapshots_taken.load(), 0u);

  follower->Restart();
  // The follower converges, necessarily through an InstallSnapshot.
  const int64_t deadline = MonotonicNanos() + 10'000'000'000;
  const std::set<std::string> want = harness.machine(leader->id())->values();
  while (harness.machine(follower->id())->values().size() < want.size() &&
         MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(harness.machine(follower->id())->values(), want);
  EXPECT_GT(follower->stats().snapshots_installed.load(), 0u);
  EXPECT_GT(leader->stats().snapshots_sent.load(), 0u);
}

// --- durability ordering (crash-point regression) ------------------------------

TEST(RaftSnapshotTest, SnapshotIsPersistedBeforeLogCompaction) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/16);
  RaftNode* leader = harness.group->WaitForLeader();
  ASSERT_NE(leader, nullptr);

  // At the crash point - snapshot fsync done, prefix not yet dropped - record
  // what a crash there would find on disk.
  std::atomic<uint64_t> first_index_at_persist{0};
  std::atomic<uint64_t> fsyncs_at_persist{0};
  std::atomic<int> persist_events{0};
  leader->set_test_event_hook([&, leader](const char* event) {
    if (std::strcmp(event, "snapshot.persisted") != 0) {
      return;
    }
    if (persist_events.fetch_add(1) == 0) {
      first_index_at_persist.store(leader->log_first_index());
      fsyncs_at_persist.store(leader->storage().fsyncs());
    }
  });

  const uint64_t fsyncs_before = leader->storage().fsyncs();
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(harness.group->Propose("p" + std::to_string(i)).ok());
  }
  const int64_t deadline = MonotonicNanos() + 5'000'000'000;
  while (leader->stats().snapshots_taken.load() == 0 && MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(leader->stats().snapshots_taken.load(), 0u);
  ASSERT_GT(persist_events.load(), 0);
  leader->set_test_event_hook(nullptr);

  // The snapshot fsync happened (counter moved past the baseline) while the
  // log prefix was STILL present: a crash in the window loses nothing,
  // because the prefix exists in the durable log and the snapshot both.
  EXPECT_GT(fsyncs_at_persist.load(), fsyncs_before);
  EXPECT_EQ(first_index_at_persist.load(), 0u)
      << "log was compacted before the snapshot was durable";
  EXPECT_GT(leader->log_first_index(), 0u);  // compaction did follow
}

TEST(RaftSnapshotTest, CrashAtThePersistedPointConverges) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/16);
  RaftNode* leader = harness.group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  // Crash the leader exactly at the crash point, between the snapshot fsync
  // and the prefix drop (Stop only flips the down flag - safe from the hook,
  // which runs outside mu_).
  std::atomic<int> crashes{0};
  leader->set_test_event_hook([&, leader](const char* event) {
    if (std::strcmp(event, "snapshot.persisted") == 0 && crashes.fetch_add(1) == 0) {
      leader->Stop();
    }
  });
  for (int i = 0; i < 80; ++i) {
    // Proposals start failing once the leader dies mid-snapshot; keep going
    // through the re-election so the threshold is crossed either way.
    harness.group->Propose("c" + std::to_string(i));
  }
  const int64_t crash_deadline = MonotonicNanos() + 10'000'000'000;
  while (crashes.load() == 0 && MonotonicNanos() < crash_deadline) {
    harness.group->Propose("fill");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(crashes.load(), 0) << "leader never reached the crash point";
  leader->set_test_event_hook(nullptr);

  // The survivors elect a new leader and keep committing; the crashed node
  // restarts with its persisted snapshot + log and converges.
  RaftNode* new_leader = harness.group->WaitForLeader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader, leader);
  ASSERT_TRUE(harness.group->Propose("after-crash").ok());
  leader->Restart();
  const int64_t deadline = MonotonicNanos() + 10'000'000'000;
  while (harness.machine(leader->id())->values().count("after-crash") == 0 &&
         MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(harness.machine(leader->id())->values().count("after-crash"), 0u);
}

// --- snapshots racing membership changes ---------------------------------------

TEST(RaftSnapshotTest, LearnerCatchupSnapshotRacesConfigChange) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/8);
  // Enough writes that the joining learner MUST catch up via snapshot.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(harness.group->Propose("r" + std::to_string(i)).ok());
  }
  auto added = harness.group->AddLearner();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  const uint32_t learner = *added;

  // Race the learner's snapshot install against continued writes (which keep
  // compacting the leader's log under it) and a concurrent promotion.
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      harness.group->Propose("w" + std::to_string(i++));
    }
  });
  Status promoted = harness.group->PromoteLearner(learner, /*max_lag_entries=*/32);
  stop.store(true, std::memory_order_release);
  writer.join();
  ASSERT_TRUE(promoted.ok()) << promoted.ToString();

  const RaftConfig config = harness.group->CommittedConfig();
  EXPECT_TRUE(config.IsVoter(learner));
  RaftNode* node = harness.group->node(learner);
  ASSERT_NE(node, nullptr);
  EXPECT_GT(node->stats().snapshots_installed.load(), 0u)
      << "learner caught up without the snapshot path";

  // The promoted node converges on the final state.
  ASSERT_TRUE(harness.group->Propose("final").ok());
  const int64_t deadline = MonotonicNanos() + 10'000'000'000;
  // The factory appended the learner's machine at AddLearner time.
  SetMachine* machine = harness.machine(learner);
  ASSERT_NE(machine, nullptr);
  while (machine->values().count("final") == 0 && MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(machine->values().count("final"), 0u);
}

TEST(RaftSnapshotTest, InstallSnapshotAtJustRemovedNodeIsHarmless) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/8);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(harness.group->Propose("s" + std::to_string(i)).ok());
  }
  RaftNode* leader = harness.group->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  RaftNode* removed = nullptr;
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    if (harness.group->node(i) != leader) {
      removed = harness.group->node(i);
      break;
    }
  }
  ASSERT_NE(removed, nullptr);
  ASSERT_TRUE(harness.group->RemoveNode(removed->id()).ok());

  // A stale InstallSnapshot arrives at the node that was just removed (its
  // old leader had it in flight). The node installs or ignores it without
  // rejoining the group: the carried config still excludes nothing newer
  // than what it knows, and its non-member status survives.
  InstallSnapshotRequest stale;
  stale.term = removed->term();
  stale.leader_id = leader->id();
  stale.snapshot_index = removed->last_applied() + 5;
  stale.snapshot_term = removed->term();
  stale.data = "S\nstale-entry\n";
  stale.config = harness.group->CommittedConfig().Encode();  // excludes `removed`
  stale.config_index = removed->config_index();
  InstallSnapshotReply reply = removed->HandleInstallSnapshot(stale);
  EXPECT_FALSE(reply.peer_down);
  EXPECT_FALSE(removed->is_voter());
  EXPECT_EQ(removed->role(), RaftRole::kLearner);

  // The group is unbothered: still two voters, still committing.
  EXPECT_EQ(harness.group->Majority(), 2u);
  ASSERT_TRUE(harness.group->Propose("still-alive").ok());
}

// --- IndexReplica snapshot round trip ------------------------------------------

TEST(RaftSnapshotTest, IndexReplicaSnapshotRoundTrips) {
  Network network(NetworkOptions{.zero_latency = true});
  IndexNodeOptions options;
  options.start_invalidator = false;
  IndexReplica source(&network, options);
  // A little tree.
  source.LoadDir(kRootId, "a", 2, kPermAll);
  source.LoadDir(2, "b", 3, kPermRead | kPermTraverse);
  source.LoadDir(3, "c", 4, kPermAll);
  source.LoadDir(kRootId, "x", 5, kPermAll);

  IndexReplica target(&network, options);
  target.LoadDir(kRootId, "stale", 99, kPermAll);
  target.Restore(source.Snapshot());

  EXPECT_EQ(target.table().Size(), source.table().Size());
  EXPECT_FALSE(target.table().Lookup(kRootId, "stale").has_value());
  auto outcome = target.ResolveDir(SplitPath("/a/b/c"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->dir_id, 4u);
  EXPECT_EQ(target.table().Lookup(2, "b")->permission, kPermRead | kPermTraverse);
  EXPECT_EQ(target.table().PathOf(4).value(), "/a/b/c");
}

TEST(RaftSnapshotTest, IndexServiceRunsWithCompactionEnabled) {
  // End to end: a Mantle IndexService with aggressive compaction keeps every
  // replica consistent through hundreds of mutations.
  Network network(FastNetworkOptions());
  IndexServiceOptions options;
  options.num_voters = 3;
  options.raft = FastRaftOptions();
  options.raft.snapshot_threshold_entries = 32;
  IndexService service(&network, "snapidx", options);
  service.Start();

  InodeId parent = kRootId;
  for (InodeId id = 2; id < 150; ++id) {
    const std::string name = "d" + std::to_string(id);
    ASSERT_TRUE(service.AddDir(id % 3 == 0 ? kRootId : parent, name, id, kPermAll).ok());
    parent = id;
  }
  RaftNode* leader = service.group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->stats().snapshots_taken.load(), 0u);
  // All replicas converge to identical tables.
  const int64_t deadline = MonotonicNanos() + 5'000'000'000;
  while (MonotonicNanos() < deadline) {
    bool converged = true;
    for (uint32_t i = 0; i < service.num_replicas(); ++i) {
      if (service.replica(i)->table().Size() != 148u) {
        converged = false;
      }
    }
    if (converged) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (uint32_t i = 0; i < service.num_replicas(); ++i) {
    EXPECT_EQ(service.replica(i)->table().Size(), 148u) << i;
  }
}

}  // namespace
}  // namespace mantle
