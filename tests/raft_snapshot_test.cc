// Raft log compaction and InstallSnapshot: lagging replicas catch up from a
// state-machine snapshot instead of replaying the whole log.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>

#include "src/common/path.h"
#include "src/index/index_service.h"
#include "src/raft/group.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// --- RaftLog compaction unit tests -------------------------------------------

TEST(RaftLogCompactionTest, CompactPrefixKeepsSuffixAndSentinel) {
  RaftLog log;
  for (uint64_t i = 1; i <= 10; ++i) {
    log.Append(LogEntry{2, i, "e" + std::to_string(i)});
  }
  log.CompactPrefix(6);
  EXPECT_EQ(log.FirstIndex(), 6u);
  EXPECT_EQ(log.LastIndex(), 10u);
  EXPECT_EQ(log.LiveEntries(), 4u);
  EXPECT_TRUE(log.Compacted(5));
  EXPECT_FALSE(log.Compacted(6));
  EXPECT_EQ(log.TermAt(6), 2u);  // sentinel keeps the term
  EXPECT_EQ(log.At(7).payload, "e7");
  auto slice = log.Slice(6, 10);
  ASSERT_EQ(slice.size(), 4u);
  EXPECT_EQ(slice[0].index, 7u);
}

TEST(RaftLogCompactionTest, CompactIsIdempotentAndBounded) {
  RaftLog log;
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(LogEntry{1, i, "x"});
  }
  log.CompactPrefix(3);
  log.CompactPrefix(3);   // no-op
  log.CompactPrefix(2);   // below first index: no-op
  log.CompactPrefix(99);  // beyond last index: no-op
  EXPECT_EQ(log.FirstIndex(), 3u);
  EXPECT_EQ(log.LastIndex(), 5u);
}

TEST(RaftLogCompactionTest, ResetToSnapshotDiscardsEverything) {
  RaftLog log;
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(LogEntry{1, i, "x"});
  }
  log.ResetToSnapshot(42, 7);
  EXPECT_EQ(log.FirstIndex(), 42u);
  EXPECT_EQ(log.LastIndex(), 42u);
  EXPECT_EQ(log.LastTerm(), 7u);
  EXPECT_EQ(log.LiveEntries(), 0u);
  log.Append(LogEntry{7, 43, "after"});
  EXPECT_EQ(log.At(43).payload, "after");
}

TEST(RaftLogCompactionTest, TruncateFromRespectsCompactionPoint) {
  RaftLog log;
  for (uint64_t i = 1; i <= 8; ++i) {
    log.Append(LogEntry{1, i, "x"});
  }
  log.CompactPrefix(4);
  log.TruncateFrom(6);
  EXPECT_EQ(log.LastIndex(), 5u);
  log.TruncateFrom(2);  // below the sentinel: ignored
  EXPECT_EQ(log.FirstIndex(), 4u);
  EXPECT_EQ(log.LastIndex(), 5u);
}

// --- snapshottable machine for group tests ------------------------------------

class SetMachine final : public StateMachine {
 public:
  std::string Apply(uint64_t, const std::string& command) override {
    std::lock_guard<std::mutex> lock(mu_);
    values_.insert(command);
    return command;
  }
  std::string Snapshot() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "S";  // non-empty even when the set is
    for (const auto& value : values_) {
      out += value;
      out += '\n';
    }
    return out;
  }
  void Restore(const std::string& snapshot) override {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
    size_t pos = 1;  // skip the header byte
    while (pos < snapshot.size()) {
      const size_t end = snapshot.find('\n', pos);
      values_.insert(snapshot.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  std::set<std::string> values() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

 private:
  mutable std::mutex mu_;
  std::set<std::string> values_;
};

struct SnapHarness {
  std::unique_ptr<Network> network;
  std::vector<SetMachine*> machines;
  std::unique_ptr<RaftGroup> group;
};

SnapHarness MakeSnapGroup(uint64_t threshold) {
  SnapHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  RaftOptions options = FastRaftOptions();
  options.snapshot_threshold_entries = threshold;
  harness.machines.resize(3, nullptr);
  harness.group = std::make_unique<RaftGroup>(
      harness.network.get(), "snap", 3, 0,
      [&harness](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto machine = std::make_unique<SetMachine>();
        harness.machines[id] = machine.get();
        return machine;
      },
      options);
  harness.group->Start();
  return harness;
}

TEST(RaftSnapshotTest, LeaderCompactsItsLogPastThreshold) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/16);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(harness.group->Propose("v" + std::to_string(i)).ok());
  }
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  const int64_t deadline = MonotonicNanos() + 5'000'000'000;
  while (leader->stats().snapshots_taken.load() == 0 && MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(leader->stats().snapshots_taken.load(), 0u);
}

TEST(RaftSnapshotTest, LaggingFollowerCatchesUpViaSnapshot) {
  SnapHarness harness = MakeSnapGroup(/*threshold=*/16);
  ASSERT_TRUE(harness.group->Propose("before").ok());
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  RaftNode* follower = nullptr;
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    if (harness.group->node(i) != leader) {
      follower = harness.group->node(i);
      break;
    }
  }
  ASSERT_NE(follower, nullptr);
  follower->Stop();

  // Write far past the threshold so the leader compacts beyond what the
  // stopped follower holds.
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(harness.group->Propose("w" + std::to_string(i)).ok());
  }
  const int64_t compact_deadline = MonotonicNanos() + 5'000'000'000;
  while (leader->stats().snapshots_taken.load() == 0 &&
         MonotonicNanos() < compact_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(leader->stats().snapshots_taken.load(), 0u);

  follower->Restart();
  // The follower converges, necessarily through an InstallSnapshot.
  const int64_t deadline = MonotonicNanos() + 10'000'000'000;
  const std::set<std::string> want = harness.machines[leader->id()]->values();
  while (harness.machines[follower->id()]->values().size() < want.size() &&
         MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(harness.machines[follower->id()]->values(), want);
  EXPECT_GT(follower->stats().snapshots_installed.load(), 0u);
  EXPECT_GT(leader->stats().snapshots_sent.load(), 0u);
}

// --- IndexReplica snapshot round trip ------------------------------------------

TEST(RaftSnapshotTest, IndexReplicaSnapshotRoundTrips) {
  Network network(NetworkOptions{.zero_latency = true});
  IndexNodeOptions options;
  options.start_invalidator = false;
  IndexReplica source(&network, options);
  // A little tree.
  source.LoadDir(kRootId, "a", 2, kPermAll);
  source.LoadDir(2, "b", 3, kPermRead | kPermTraverse);
  source.LoadDir(3, "c", 4, kPermAll);
  source.LoadDir(kRootId, "x", 5, kPermAll);

  IndexReplica target(&network, options);
  target.LoadDir(kRootId, "stale", 99, kPermAll);
  target.Restore(source.Snapshot());

  EXPECT_EQ(target.table().Size(), source.table().Size());
  EXPECT_FALSE(target.table().Lookup(kRootId, "stale").has_value());
  auto outcome = target.ResolveDir(SplitPath("/a/b/c"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->dir_id, 4u);
  EXPECT_EQ(target.table().Lookup(2, "b")->permission, kPermRead | kPermTraverse);
  EXPECT_EQ(target.table().PathOf(4).value(), "/a/b/c");
}

TEST(RaftSnapshotTest, IndexServiceRunsWithCompactionEnabled) {
  // End to end: a Mantle IndexService with aggressive compaction keeps every
  // replica consistent through hundreds of mutations.
  Network network(FastNetworkOptions());
  IndexServiceOptions options;
  options.num_voters = 3;
  options.raft = FastRaftOptions();
  options.raft.snapshot_threshold_entries = 32;
  IndexService service(&network, "snapidx", options);
  service.Start();

  InodeId parent = kRootId;
  for (InodeId id = 2; id < 150; ++id) {
    const std::string name = "d" + std::to_string(id);
    ASSERT_TRUE(service.AddDir(id % 3 == 0 ? kRootId : parent, name, id, kPermAll).ok());
    parent = id;
  }
  RaftNode* leader = service.group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->stats().snapshots_taken.load(), 0u);
  // All replicas converge to identical tables.
  const int64_t deadline = MonotonicNanos() + 5'000'000'000;
  while (MonotonicNanos() < deadline) {
    bool converged = true;
    for (uint32_t i = 0; i < service.num_replicas(); ++i) {
      if (service.replica(i)->table().Size() != 148u) {
        converged = false;
      }
    }
    if (converged) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (uint32_t i = 0; i < service.num_replicas(); ++i) {
    EXPECT_EQ(service.replica(i)->table().Size(), 148u) << i;
  }
}

}  // namespace
}  // namespace mantle
