#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/raft/group.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// Records every applied command; replicas must converge on the same sequence.
class RecordingMachine final : public StateMachine {
 public:
  std::string Apply(uint64_t index, const std::string& command) override {
    std::lock_guard<std::mutex> lock(mu_);
    applied_.push_back(command);
    return "ack:" + command;
  }

  std::vector<std::string> applied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> applied_;
};

struct GroupHarness {
  std::unique_ptr<Network> network;
  std::vector<RecordingMachine*> machines;
  std::unique_ptr<RaftGroup> group;
};

GroupHarness MakeGroup(uint32_t voters, uint32_t learners, RaftOptions options) {
  GroupHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  harness.machines.resize(voters + learners, nullptr);
  harness.group = std::make_unique<RaftGroup>(
      harness.network.get(), "raft-test", voters, learners,
      [&harness](uint32_t id) -> std::unique_ptr<StateMachine> {
        auto machine = std::make_unique<RecordingMachine>();
        harness.machines[id] = machine.get();
        return machine;
      },
      options);
  harness.group->Start();
  return harness;
}

void WaitAllApplied(GroupHarness& harness, size_t count, int64_t timeout_nanos = 5'000'000'000) {
  const int64_t deadline = MonotonicNanos() + timeout_nanos;
  for (;;) {
    bool done = true;
    for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
      if (!harness.group->node(i)->IsDown() &&
          harness.machines[i]->applied().size() < count) {
        done = false;
      }
    }
    if (done || MonotonicNanos() > deadline) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(RaftTest, ElectsLeaderAtStartup) {
  GroupHarness harness = MakeGroup(3, 0, FastRaftOptions());
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->role(), RaftRole::kLeader);
  EXPECT_TRUE(leader->is_voter());
}

TEST(RaftTest, ProposeAppliesOnAllReplicas) {
  GroupHarness harness = MakeGroup(3, 0, FastRaftOptions());
  auto result = harness.group->Propose("cmd-1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "ack:cmd-1");
  WaitAllApplied(harness, 1);
  for (auto* machine : harness.machines) {
    ASSERT_EQ(machine->applied().size(), 1u);
    EXPECT_EQ(machine->applied()[0], "cmd-1");
  }
}

TEST(RaftTest, ReplicasConvergeOnSameOrder) {
  GroupHarness harness = MakeGroup(3, 0, FastRaftOptions());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> proposers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    proposers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        if (!harness.group->Propose("t" + std::to_string(t) + "-" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& proposer : proposers) {
    proposer.join();
  }
  EXPECT_EQ(failures.load(), 0);
  WaitAllApplied(harness, kThreads * kPerThread);
  const auto reference = harness.machines[0]->applied();
  ASSERT_EQ(reference.size(), static_cast<size_t>(kThreads * kPerThread));
  for (auto* machine : harness.machines) {
    EXPECT_EQ(machine->applied(), reference);
  }
}

TEST(RaftTest, LearnersReplicateButDoNotVote) {
  GroupHarness harness = MakeGroup(3, 2, FastRaftOptions());
  EXPECT_EQ(harness.group->Majority(), 2u);  // 3 voters -> majority 2
  EXPECT_FALSE(harness.group->node(3)->is_voter());
  EXPECT_EQ(harness.group->node(4)->role(), RaftRole::kLearner);
  ASSERT_TRUE(harness.group->Propose("learned").ok());
  WaitAllApplied(harness, 1);
  EXPECT_EQ(harness.machines[3]->applied().size(), 1u);
  EXPECT_EQ(harness.machines[4]->applied().size(), 1u);
}

TEST(RaftTest, LogBatchingAmortizesFsync) {
  RaftOptions batched = FastRaftOptions();
  batched.fsync_nanos = 0;
  batched.log_batching = true;
  GroupHarness harness = MakeGroup(3, 0, batched);
  constexpr int kOps = 200;
  std::vector<std::thread> proposers;
  for (int t = 0; t < 8; ++t) {
    proposers.emplace_back([&, t]() {
      for (int i = 0; i < kOps / 8; ++i) {
        harness.group->Propose("b" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  for (auto& proposer : proposers) {
    proposer.join();
  }
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  // Batching must have grouped at least some proposals: fewer persistence
  // calls than entries persisted.
  EXPECT_LT(leader->stats().batches.load(), leader->stats().proposals.load());
  EXPECT_GE(leader->storage().entries_persisted(), static_cast<uint64_t>(kOps));
}

TEST(RaftTest, UnbatchedModePersistsPerEntry) {
  RaftOptions unbatched = FastRaftOptions();
  unbatched.fsync_nanos = 0;
  unbatched.log_batching = false;
  GroupHarness harness = MakeGroup(1, 0, unbatched);  // single voter: no replication noise
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(harness.group->Propose("u" + std::to_string(i)).ok());
  }
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->stats().batches.load(), 20u);
}

TEST(RaftTest, FollowerReadFenceSeesCommittedWrites) {
  GroupHarness harness = MakeGroup(3, 0, FastRaftOptions());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(harness.group->Propose("w" + std::to_string(i)).ok());
  }
  RaftNode* leader = harness.group->leader();
  ASSERT_NE(leader, nullptr);
  const uint64_t commit = leader->commit_index();
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    RaftNode* node = harness.group->node(i);
    if (node == leader) {
      continue;
    }
    auto fence = node->FollowerReadFence();
    ASSERT_TRUE(fence.ok());
    EXPECT_GE(*fence, commit);
    EXPECT_GE(node->last_applied(), *fence);
    // Every committed command is now visible locally.
    EXPECT_GE(harness.machines[i]->applied().size(), 10u);
  }
}

TEST(RaftTest, ConcurrentFollowerReadsBatchLeaderQueries) {
  GroupHarness harness = MakeGroup(3, 0, FastRaftOptions());
  ASSERT_TRUE(harness.group->Propose("seed").ok());
  RaftNode* leader = harness.group->leader();
  RaftNode* follower = nullptr;
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    if (harness.group->node(i) != leader) {
      follower = harness.group->node(i);
      break;
    }
  }
  ASSERT_NE(follower, nullptr);
  std::vector<std::thread> readers;
  for (int t = 0; t < 16; ++t) {
    readers.emplace_back([follower]() {
      for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(follower->FollowerReadFence().ok());
      }
    });
  }
  for (auto& reader : readers) {
    reader.join();
  }
  const uint64_t queries = follower->stats().read_index_queries.load();
  const uint64_t batched = follower->stats().read_index_batched.load();
  EXPECT_EQ(queries + batched, 16u * 20u);
}

TEST(RaftTest, LeaderFailoverElectsNewLeaderAndRetainsLog) {
  RaftOptions options = FastRaftOptions();
  GroupHarness harness = MakeGroup(3, 0, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(harness.group->Propose("pre" + std::to_string(i)).ok());
  }
  RaftNode* old_leader = harness.group->leader();
  ASSERT_NE(old_leader, nullptr);
  old_leader->Stop();

  RaftNode* new_leader = nullptr;
  const int64_t deadline = MonotonicNanos() + 10'000'000'000;
  while (MonotonicNanos() < deadline) {
    new_leader = harness.group->leader();
    if (new_leader != nullptr && new_leader != old_leader) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader, old_leader);

  // The new leader still accepts and commits proposals.
  ASSERT_TRUE(harness.group->Propose("post").ok());
  // Survivors converge including the old entries.
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    RaftNode* node = harness.group->node(i);
    if (node->IsDown()) {
      continue;
    }
    const int64_t converge_deadline = MonotonicNanos() + 5'000'000'000;
    while (harness.machines[i]->applied().size() < 6 &&
           MonotonicNanos() < converge_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    auto applied = harness.machines[i]->applied();
    ASSERT_GE(applied.size(), 6u);
    EXPECT_EQ(applied[0], "pre0");
    EXPECT_EQ(applied.back(), "post");
  }
}

TEST(RaftTest, RestartedNodeCatchesUp) {
  GroupHarness harness = MakeGroup(3, 0, FastRaftOptions());
  ASSERT_TRUE(harness.group->Propose("one").ok());
  // Stop a follower, write more, restart it.
  RaftNode* leader = harness.group->leader();
  RaftNode* follower = nullptr;
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    if (harness.group->node(i) != leader) {
      follower = harness.group->node(i);
      break;
    }
  }
  ASSERT_NE(follower, nullptr);
  follower->Stop();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(harness.group->Propose("while-down" + std::to_string(i)).ok());
  }
  follower->Restart();
  const int64_t deadline = MonotonicNanos() + 5'000'000'000;
  while (harness.machines[follower->id()]->applied().size() < 6 &&
         MonotonicNanos() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(harness.machines[follower->id()]->applied().size(), 6u);
}

TEST(RaftTest, ProposalToDownGroupTimesOut) {
  RaftOptions options = FastRaftOptions();
  options.propose_timeout_nanos = 300'000'000;  // 300 ms
  options.enable_election_timer = false;        // nobody can recover leadership
  GroupHarness harness = MakeGroup(3, 0, options);
  for (uint32_t i = 0; i < harness.group->num_nodes(); ++i) {
    harness.group->node(i)->Stop();
  }
  auto result = harness.group->Propose("doomed");
  EXPECT_FALSE(result.ok());
}

TEST(RaftLogTest, SliceAndTruncate) {
  RaftLog log;
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(LogEntry{1, i, "e" + std::to_string(i)});
  }
  EXPECT_EQ(log.LastIndex(), 5u);
  auto slice = log.Slice(2, 2);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].index, 3u);
  log.TruncateFrom(4);
  EXPECT_EQ(log.LastIndex(), 3u);
  EXPECT_EQ(log.TermAt(9), 0u);
  EXPECT_FALSE(log.Has(4));
}

}  // namespace
}  // namespace mantle
