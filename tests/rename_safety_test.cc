// Rename safety under adversarial interleavings: concurrent renames that
// would jointly create a cycle must never both succeed (the orphaned-island
// failure loop detection exists to prevent), across every system that
// implements loop detection.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "src/workload/applications.h"
#include "src/workload/namespace_gen.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

// Runs `rounds` iterations of the cycle race on `service`: /x and /y exist;
// one thread renames /x -> /y/xin while another renames /y -> /x/yin.
// Exactly zero or one of the two may succeed; afterwards both directories
// must still be reachable from the root.
void RunCycleRace(MetadataService* service, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    const std::string x = "/x" + std::to_string(round);
    const std::string y = "/y" + std::to_string(round);
    ASSERT_TRUE(service->Mkdir(x).ok());
    ASSERT_TRUE(service->Mkdir(y).ok());

    std::atomic<int> successes{0};
    std::thread mover_a([&]() {
      if (service->RenameDir(x, y + "/xin").ok()) {
        successes.fetch_add(1);
      }
    });
    std::thread mover_b([&]() {
      if (service->RenameDir(y, x + "/yin").ok()) {
        successes.fetch_add(1);
      }
    });
    mover_a.join();
    mover_b.join();

    ASSERT_LE(successes.load(), 1) << "both cycle-forming renames succeeded";
    // Every directory is still reachable from the root: x (or y/xin) and
    // y (or x/yin) resolve.
    const bool x_at_home = service->StatDir(x).ok();
    const bool x_moved = service->StatDir(y + "/xin").ok();
    EXPECT_TRUE(x_at_home || x_moved) << "round " << round;
    const bool y_at_home = service->StatDir(y).ok();
    const bool y_moved = service->StatDir(x + "/yin").ok();
    EXPECT_TRUE(y_at_home || y_moved) << "round " << round;
    EXPECT_FALSE(x_moved && y_moved) << "cycle materialized";
  }
}

TEST(RenameSafetyTest, MantleNeverFormsCycles) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  RunCycleRace(&service, 20);
}

TEST(RenameSafetyTest, LocoFsNeverFormsCycles) {
  Network network(FastNetworkOptions());
  LocoFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.raft = FastRaftOptions();
  LocoFsService service(&network, options);
  RunCycleRace(&service, 10);
}

TEST(RenameSafetyTest, InfiniFsNeverFormsCycles) {
  Network network(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  InfiniFsService service(&network, options);
  RunCycleRace(&service, 10);
}

TEST(RenameSafetyTest, ChainedRenamesKeepTreeConnected) {
  // A deeper interleaving: three directories renamed around a triangle
  // concurrently, repeatedly; the namespace must stay a tree.
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  ASSERT_TRUE(service.Mkdir("/a").ok());
  ASSERT_TRUE(service.Mkdir("/b").ok());
  ASSERT_TRUE(service.Mkdir("/c").ok());

  std::vector<std::thread> movers;
  for (int t = 0; t < 3; ++t) {
    movers.emplace_back([&, t]() {
      const char* sources[] = {"/a", "/b", "/c"};
      const char* targets[] = {"/b/a_in", "/c/b_in", "/a/c_in"};
      for (int i = 0; i < 10; ++i) {
        service.RenameDir(sources[t], targets[t]);
        service.RenameDir(targets[t], sources[t]);  // move back if it landed
      }
    });
  }
  for (auto& mover : movers) {
    mover.join();
  }
  // Audit: every indexed directory reconstructs a full path to the root, and
  // fsck is clean.
  IndexReplica* leader = service.index()->LeaderReplica();
  for (const auto& entry : leader->table().Export()) {
    EXPECT_TRUE(leader->table().PathOf(entry.id).has_value())
        << "orphaned directory id " << entry.id;
  }
  EXPECT_TRUE(service.Fsck().clean());
}

// Application workloads complete without errors on every system (the
// Fig. 10/11 harness path end to end at miniature scale).
class AppOnEverySystemTest : public ::testing::Test {};

void RunMiniApps(MetadataService* service) {
  AnalyticsOptions analytics;
  analytics.queries = 1;
  analytics.subtasks_per_query = 6;
  analytics.objects_per_subtask = 1;
  analytics.threads = 3;
  AppResult a = RunAnalytics(service, "/spark", analytics);
  EXPECT_EQ(a.errors, 0u);

  AudioOptions audio;
  audio.input_objects = 12;
  audio.segments_per_object = 2;
  audio.threads = 3;
  audio.dir_depth = 6;
  AppResult b = RunAudio(service, "/audio", audio);
  EXPECT_EQ(b.errors, 0u);
}

TEST_F(AppOnEverySystemTest, Mantle) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  RunMiniApps(&service);
}

TEST_F(AppOnEverySystemTest, Tectonic) {
  Network network(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  TectonicService service(&network, options);
  RunMiniApps(&service);
}

TEST_F(AppOnEverySystemTest, DbTable) {
  Network network(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  options.use_distributed_txn = true;
  TectonicService service(&network, options);
  RunMiniApps(&service);
}

TEST_F(AppOnEverySystemTest, InfiniFs) {
  Network network(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  InfiniFsService service(&network, options);
  RunMiniApps(&service);
}

TEST_F(AppOnEverySystemTest, LocoFs) {
  Network network(FastNetworkOptions());
  LocoFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.raft = FastRaftOptions();
  LocoFsService service(&network, options);
  RunMiniApps(&service);
}

}  // namespace
}  // namespace mantle
