// Architecture invariants, asserted as RPC counts: the paper's Table 1
// ("#RTTs for lookup") and the per-operation round-trip structure of each
// system. These pin down exactly *why* the benches produce their shapes.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

constexpr int kDepth = 10;

struct Harness {
  std::unique_ptr<Network> network;
  std::unique_ptr<MetadataService> service;
  std::string deep_object;  // object at directory depth kDepth
};

void BuildTree(Harness& harness) {
  std::string path;
  for (int level = 0; level < kDepth; ++level) {
    path += "/L" + std::to_string(level);
    ASSERT_TRUE(harness.service->BulkLoadDir(path).ok());
  }
  harness.deep_object = path + "/object.bin";
  ASSERT_TRUE(harness.service->BulkLoadObject(harness.deep_object, 1024).ok());
}

Harness MakeMantleH() {
  Harness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  harness.service = std::make_unique<MantleService>(harness.network.get(), FastMantleOptions());
  BuildTree(harness);
  return harness;
}

Harness MakeTectonicH() {
  Harness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  harness.service = std::make_unique<TectonicService>(harness.network.get(), options);
  BuildTree(harness);
  return harness;
}

Harness MakeInfiniFsH() {
  Harness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  harness.service = std::make_unique<InfiniFsService>(harness.network.get(), options);
  BuildTree(harness);
  return harness;
}

Harness MakeLocoFsH() {
  Harness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  LocoFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.raft = FastRaftOptions();
  harness.service = std::make_unique<LocoFsService>(harness.network.get(), options);
  BuildTree(harness);
  return harness;
}

// --- Table 1: lookup round trips ------------------------------------------------

TEST(RpcShapeTest, MantleLookupIsOneRpcAtAnyDepth) {
  Harness harness = MakeMantleH();
  for (int warm = 0; warm < 2; ++warm) {
    OpResult result = harness.service->Lookup(harness.deep_object);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.rpcs, 1);
  }
}

TEST(RpcShapeTest, TectonicLookupIsOneRpcPerLevel) {
  Harness harness = MakeTectonicH();
  OpResult result = harness.service->Lookup(harness.deep_object);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.rpcs, kDepth);  // parent resolution: one Get per directory level
}

TEST(RpcShapeTest, InfiniFsLookupFansOutButOneRound) {
  Harness harness = MakeInfiniFsH();
  OpResult result = harness.service->Lookup(harness.deep_object);
  ASSERT_TRUE(result.ok());
  // Same number of per-level RPCs as Tectonic, issued in one parallel round.
  EXPECT_EQ(result.rpcs, kDepth);
}

TEST(RpcShapeTest, LocoFsLookupIsOneRpcToDirserver) {
  Harness harness = MakeLocoFsH();
  OpResult result = harness.service->Lookup(harness.deep_object);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.rpcs, 1);
}

// --- per-operation structure ------------------------------------------------------

TEST(RpcShapeTest, MantleObjstatIsTwoRpcs) {
  Harness harness = MakeMantleH();
  OpResult result = harness.service->StatObject(harness.deep_object);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.rpcs, 2);  // IndexNode lookup + TafDB row read
}

TEST(RpcShapeTest, MantleCreateIsTwoRpcs) {
  Harness harness = MakeMantleH();
  OpResult result =
      harness.service->CreateObject("/L0/L1/L2/L3/L4/L5/L6/L7/L8/L9/new.bin", 1);
  ASSERT_TRUE(result.ok());
  // Lookup (1) + single-shard transaction (1): entry row and parent attribute
  // colocate on shard(parent), the paper's locality argument for pid routing.
  EXPECT_EQ(result.rpcs, 2);
}

TEST(RpcShapeTest, MantleMkdirPaysCrossShardTxnPlusRaft) {
  Harness harness = MakeMantleH();
  OpResult result = harness.service->Mkdir("/L0/L1/L2/L3/L4/L5/L6/L7/L8/L9/newdir");
  ASSERT_TRUE(result.ok());
  // 1 lookup + 2PC (intent + decision WAL writes to the txn table, then
  // prepare/commit to >=1 participants) + 1 raft propose; exact participant
  // count depends on shard placement, so bound it.
  EXPECT_GE(result.rpcs, 3);
  EXPECT_LE(result.rpcs, 9);
}

TEST(RpcShapeTest, TectonicStatCostGrowsWithDepth) {
  Harness harness = MakeTectonicH();
  OpResult deep = harness.service->StatObject(harness.deep_object);
  ASSERT_TRUE(deep.ok());
  ASSERT_TRUE(harness.service->BulkLoadObject("/shallow.bin", 1).ok());
  OpResult shallow = harness.service->StatObject("/shallow.bin");
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(deep.rpcs - shallow.rpcs, kDepth);
}

TEST(RpcShapeTest, MantleStatCostIsDepthIndependent) {
  Harness harness = MakeMantleH();
  ASSERT_TRUE(harness.service->BulkLoadObject("/shallow.bin", 1).ok());
  OpResult deep = harness.service->StatObject(harness.deep_object);
  OpResult shallow = harness.service->StatObject("/shallow.bin");
  ASSERT_TRUE(deep.ok());
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(deep.rpcs, shallow.rpcs);
}

TEST(RpcShapeTest, MantleRenameMergesLookupIntoLoopDetection) {
  Harness harness = MakeMantleH();
  ASSERT_TRUE(harness.service->BulkLoadDir("/L0/victim").ok());
  ASSERT_TRUE(harness.service->BulkLoadDir("/L0/target").ok());
  OpResult result = harness.service->RenameDir("/L0/victim", "/L0/target/moved");
  ASSERT_TRUE(result.ok());
  // Mantle reports zero lookup time for dirrename (§6.3): resolution happens
  // inside the loop-detection RPC.
  EXPECT_EQ(result.breakdown.lookup_nanos, 0);
  EXPECT_GT(result.breakdown.loop_detect_nanos, 0);
  // 1 prepare RPC + TafDB transaction + raft propose.
  EXPECT_GE(result.rpcs, 3);
}

TEST(RpcShapeTest, InfiniFsLoopDetectionWalksAncestorsViaDb) {
  Harness harness = MakeInfiniFsH();
  ASSERT_TRUE(harness.service->BulkLoadDir("/L0/L1/L2/L3/L4/L5/L6/L7/L8/L9/victim").ok());
  // Rename into a deep destination: the coordinator walks the destination's
  // ancestor chain with one DB Get per level.
  ScopedRpcCounter counter;
  OpResult result = harness.service->RenameDir("/L0/L1/L2/L3/L4/L5/L6/L7/L8/L9/victim",
                                               "/L0/L1/L2/L3/L4/L5/L6/L7/L8/L9/moved");
  ASSERT_TRUE(result.ok());
  // Far more round trips than Mantle's constant-RPC rename.
  EXPECT_GT(result.rpcs, kDepth);
}

// --- hedged-read accounting (ISSUE 8 satellite) -----------------------------
//
// OpResult.rpcs counts the round trips the op *needed*. A hedge duplicates an
// in-flight RPC; the winner must not also bill the loser's copy, so a hedged
// lookup still reports Table 1's single RPC. The duplicate stays visible
// fleet-wide via net.rpc.duplicate.

TEST(RpcShapeTest, HedgedLookupWinnerDoesNotDoubleCountTheLoser) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 2'000'000'000;
  options.index.hedge.enable = true;
  options.index.hedge.quantile = 0.5;
  options.index.hedge.min_samples = 4;
  options.index.hedge.min_delay_nanos = 200'000;    // 0.2 ms
  options.index.hedge.max_delay_nanos = 5'000'000;  // 5 ms
  MantleService service(&network, options);
  ASSERT_TRUE(service.BulkLoadDir("/h").ok());
  ASSERT_TRUE(service.BulkLoadObject("/h/o", 1).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.Lookup("/h/o").ok());  // warm the latency estimator
  }
  RaftNode* leader = service.index()->group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  network.faults().PauseServer(leader->server()->name());
  const uint64_t duplicates_before =
      obs::Metrics::Instance().CounterValue("net.rpc.duplicate");
  OpResult result = service.Lookup("/h/o");
  network.faults().ResumeServer(leader->server()->name());
  ASSERT_TRUE(result.ok()) << result.status;
  // One counted RPC (the primary); the hedge copy that actually answered is
  // a duplicate of it, not an extra round trip for this op.
  EXPECT_EQ(result.rpcs, 1);
  EXPECT_GT(obs::Metrics::Instance().CounterValue("net.rpc.duplicate"), duplicates_before);
}

// Regression pin for the mkdir bound with hedging enabled: duplicate-RPC
// accounting keeps the op's reported shape inside the documented <=9 budget.
TEST(RpcShapeTest, MkdirRpcBoundHoldsWithHedgingEnabled) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.index.hedge.enable = true;
  options.index.hedge.quantile = 0.5;
  options.index.hedge.min_samples = 4;
  options.index.hedge.min_delay_nanos = 1;  // hedge aggressively
  options.index.hedge.max_delay_nanos = 1'000;
  MantleService service(&network, options);
  std::string path;
  for (int level = 0; level < kDepth; ++level) {
    path += "/L" + std::to_string(level);
    ASSERT_TRUE(service.BulkLoadDir(path).ok());
  }
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.Lookup(path).ok());
  }
  for (int i = 0; i < 4; ++i) {
    OpResult result = service.Mkdir(path + "/hedged" + std::to_string(i));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.rpcs, 3);
    EXPECT_LE(result.rpcs, 9);
  }
}

TEST(RpcShapeTest, FollowerReadFenceAddsBoundedCost) {
  // With follower reads forced on (offload threshold 0), a lookup from a
  // follower still resolves in <= 2 RPCs (replica call + fence query).
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.index.follower_read = true;
  options.index.offload_queue_threshold = 0;
  MantleService service(&network, options);
  std::string path;
  for (int level = 0; level < kDepth; ++level) {
    path += "/F" + std::to_string(level);
    ASSERT_TRUE(service.BulkLoadDir(path).ok());
  }
  ASSERT_TRUE(service.BulkLoadObject(path + "/o", 1).ok());
  for (int i = 0; i < 6; ++i) {
    OpResult result = service.Lookup(path + "/o");
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.rpcs, 2);
  }
}

}  // namespace
}  // namespace mantle
