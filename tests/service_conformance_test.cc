// Cross-system conformance suite: every MetadataService implementation
// (Mantle, Tectonic, the legacy DBtable variant, InfiniFS, LocoFS) must agree
// on the visible semantics of the metadata API. Parameterized so each
// behaviour is verified against all five systems.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "src/baselines/infinifs/infinifs_service.h"
#include "src/baselines/locofs/locofs_service.h"
#include "src/baselines/tectonic/tectonic_service.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

struct ServiceHarness {
  std::unique_ptr<Network> network;
  std::unique_ptr<MetadataService> service;
};

using HarnessFactory = ServiceHarness (*)();

ServiceHarness MakeMantle() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  harness.service = std::make_unique<MantleService>(harness.network.get(), FastMantleOptions());
  return harness;
}

ServiceHarness MakeTectonic() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  harness.service = std::make_unique<TectonicService>(harness.network.get(), options);
  return harness;
}

ServiceHarness MakeDbTable() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  TectonicOptions options;
  options.tafdb = FastTafDbOptions();
  options.use_distributed_txn = true;
  harness.service = std::make_unique<TectonicService>(harness.network.get(), options);
  return harness;
}

ServiceHarness MakeInfiniFs() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  InfiniFsOptions options;
  options.tafdb = FastTafDbOptions();
  harness.service = std::make_unique<InfiniFsService>(harness.network.get(), options);
  return harness;
}

ServiceHarness MakeLocoFs() {
  ServiceHarness harness;
  harness.network = std::make_unique<Network>(FastNetworkOptions());
  LocoFsOptions options;
  options.tafdb = FastTafDbOptions();
  options.raft = FastRaftOptions();
  harness.service = std::make_unique<LocoFsService>(harness.network.get(), options);
  return harness;
}

struct NamedFactory {
  const char* name;
  HarnessFactory factory;
};

class ConformanceTest : public ::testing::TestWithParam<NamedFactory> {
 protected:
  void SetUp() override {
    harness_ = GetParam().factory();
    service_ = harness_.service.get();
  }
  void TearDown() override {
    harness_.service.reset();
    harness_.network.reset();
  }

  ServiceHarness harness_;
  MetadataService* service_ = nullptr;
};

TEST_P(ConformanceTest, MkdirAndStatDir) {
  ASSERT_TRUE(service_->Mkdir("/a").ok());
  ASSERT_TRUE(service_->Mkdir("/a/b").ok());
  StatResult stat = service_->StatDir("/a/b");
  EXPECT_TRUE(stat.ok());
  EXPECT_TRUE(stat.info.is_dir);
}

TEST_P(ConformanceTest, MkdirDuplicateRejected) {
  ASSERT_TRUE(service_->Mkdir("/dup").ok());
  EXPECT_TRUE(service_->Mkdir("/dup").status.IsAlreadyExists());
}

TEST_P(ConformanceTest, MkdirMissingParentRejected) {
  EXPECT_TRUE(service_->Mkdir("/missing/child").status.IsNotFound());
}

TEST_P(ConformanceTest, ObjectLifecycle) {
  ASSERT_TRUE(service_->Mkdir("/d").ok());
  ASSERT_TRUE(service_->CreateObject("/d/o", 512).ok());
  StatResult stat = service_->StatObject("/d/o");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat.info.size, 512u);
  EXPECT_TRUE(service_->CreateObject("/d/o", 1).status.IsAlreadyExists());
  EXPECT_TRUE(service_->DeleteObject("/d/o").ok());
  EXPECT_TRUE(service_->StatObject("/d/o").status.IsNotFound());
  EXPECT_TRUE(service_->DeleteObject("/d/o").status.IsNotFound());
}

TEST_P(ConformanceTest, StatObjectMissingParent) {
  EXPECT_TRUE(service_->StatObject("/nowhere/o").status.IsNotFound());
}

TEST_P(ConformanceTest, DeepHierarchy) {
  std::string path;
  for (int depth = 0; depth < 10; ++depth) {
    path += "/lvl" + std::to_string(depth);
    ASSERT_TRUE(service_->Mkdir(path).ok()) << GetParam().name << " " << path;
  }
  ASSERT_TRUE(service_->CreateObject(path + "/obj", 64).ok());
  EXPECT_TRUE(service_->StatObject(path + "/obj").ok());
  EXPECT_TRUE(service_->Lookup(path + "/obj").ok());
}

TEST_P(ConformanceTest, RmdirSemantics) {
  ASSERT_TRUE(service_->Mkdir("/rm").ok());
  ASSERT_TRUE(service_->CreateObject("/rm/o", 1).ok());
  EXPECT_EQ(service_->Rmdir("/rm").status.code(), StatusCode::kNotEmpty);
  ASSERT_TRUE(service_->DeleteObject("/rm/o").ok());
  EXPECT_TRUE(service_->Rmdir("/rm").ok());
  EXPECT_TRUE(service_->StatDir("/rm").status.IsNotFound());
  EXPECT_TRUE(service_->Rmdir("/rm").status.IsNotFound());
}

TEST_P(ConformanceTest, ReadDirListsEntries) {
  ASSERT_TRUE(service_->Mkdir("/ls").ok());
  ASSERT_TRUE(service_->Mkdir("/ls/sub").ok());
  ASSERT_TRUE(service_->CreateObject("/ls/o1", 1).ok());
  std::vector<std::string> names;
  ASSERT_TRUE(service_->ReadDir("/ls", &names).ok());
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()),
            (std::set<std::string>{"sub", "o1"}));
}

TEST_P(ConformanceTest, RenameMovesDirectoryAndContents) {
  ASSERT_TRUE(service_->Mkdir("/from").ok());
  ASSERT_TRUE(service_->Mkdir("/from/inner").ok());
  ASSERT_TRUE(service_->CreateObject("/from/inner/o", 9).ok());
  ASSERT_TRUE(service_->Mkdir("/to").ok());
  ASSERT_TRUE(service_->RenameDir("/from/inner", "/to/inner2").ok());
  EXPECT_TRUE(service_->StatObject("/from/inner/o").status.IsNotFound());
  StatResult stat = service_->StatObject("/to/inner2/o");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat.info.size, 9u);
}

TEST_P(ConformanceTest, RenameMissingSourceRejected) {
  ASSERT_TRUE(service_->Mkdir("/t").ok());
  EXPECT_FALSE(service_->RenameDir("/ghost", "/t/g").ok());
}

TEST_P(ConformanceTest, RenameExistingDestinationRejected) {
  ASSERT_TRUE(service_->Mkdir("/r1").ok());
  ASSERT_TRUE(service_->Mkdir("/r2").ok());
  EXPECT_TRUE(service_->RenameDir("/r1", "/r2").status.IsAlreadyExists());
}

TEST_P(ConformanceTest, LookupReportsMissingPath) {
  ASSERT_TRUE(service_->Mkdir("/x").ok());
  EXPECT_TRUE(service_->Lookup("/x/y/z/obj").status.IsNotFound());
}

TEST_P(ConformanceTest, BulkLoadMatchesOnlineSemantics) {
  ASSERT_TRUE(service_->BulkLoadDir("/bulk").ok());
  ASSERT_TRUE(service_->BulkLoadDir("/bulk/inner").ok());
  ASSERT_TRUE(service_->BulkLoadObject("/bulk/inner/o", 77).ok());
  StatResult stat = service_->StatObject("/bulk/inner/o");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat.info.size, 77u);
  // Online operations continue on top of bulk-loaded state.
  ASSERT_TRUE(service_->Mkdir("/bulk/inner/online").ok());
  EXPECT_TRUE(service_->StatDir("/bulk/inner/online").ok());
}

TEST_P(ConformanceTest, ConcurrentCreatesInSharedDirectoryAllSucceed) {
  ASSERT_TRUE(service_->Mkdir("/hot").ok());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 15;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        if (!service_
                 ->CreateObject("/hot/o" + std::to_string(t) + "_" + std::to_string(i), 1)
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0) << GetParam().name;
  std::vector<std::string> names;
  ASSERT_TRUE(service_->ReadDir("/hot", &names).ok());
  EXPECT_EQ(names.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_P(ConformanceTest, ConcurrentMkdirUniqueNamesAllSucceed) {
  ASSERT_TRUE(service_->Mkdir("/mk").ok());
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 10; ++i) {
        if (!service_->Mkdir("/mk/d" + std::to_string(t) + "_" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0) << GetParam().name;
}

TEST_P(ConformanceTest, ConcurrentMkdirSameNameExactlyOneWins) {
  ASSERT_TRUE(service_->Mkdir("/race").ok());
  constexpr int kThreads = 4;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      if (service_->Mkdir("/race/same").ok()) {
        successes.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(successes.load(), 1) << GetParam().name;
}

TEST_P(ConformanceTest, PagedListingWalksEntireDirectoryInOrder) {
  ASSERT_TRUE(service_->Mkdir("/paged").ok());
  std::set<std::string> expected;
  for (int i = 0; i < 23; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "o%03d", i);
    ASSERT_TRUE(service_->CreateObject(std::string("/paged/") + name, 1).ok());
    expected.insert(name);
  }
  ASSERT_TRUE(service_->Mkdir("/paged/subdir").ok());
  expected.insert("subdir");

  std::vector<std::string> collected;
  std::string token;
  for (int page_index = 0;; ++page_index) {
    ASSERT_LT(page_index, 10) << "paging did not terminate";
    MetadataService::ListPage page;
    OpResult result = service_->ListObjects("/paged", token, 7, &page);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(page.names.size(), 7u);
    for (const auto& name : page.names) {
      if (!collected.empty()) {
        EXPECT_LT(collected.back(), name);  // strictly ordered, no repeats
      }
      collected.push_back(name);
    }
    if (!page.truncated) {
      break;
    }
    token = page.next_start_after;
  }
  EXPECT_EQ(std::set<std::string>(collected.begin(), collected.end()), expected);
}

TEST_P(ConformanceTest, PagedListingEdgeCases) {
  ASSERT_TRUE(service_->Mkdir("/edge").ok());
  MetadataService::ListPage page;
  // Empty directory.
  ASSERT_TRUE(service_->ListObjects("/edge", "", 10, &page).ok());
  EXPECT_TRUE(page.names.empty());
  EXPECT_FALSE(page.truncated);
  // Missing directory.
  EXPECT_FALSE(service_->ListObjects("/nope", "", 10, &page).ok());
  // Exact page boundary: max == count leaves truncated false on the 2nd call.
  ASSERT_TRUE(service_->CreateObject("/edge/a", 1).ok());
  ASSERT_TRUE(service_->CreateObject("/edge/b", 1).ok());
  ASSERT_TRUE(service_->ListObjects("/edge", "", 2, &page).ok());
  EXPECT_EQ(page.names.size(), 2u);
  MetadataService::ListPage rest;
  ASSERT_TRUE(service_->ListObjects("/edge", page.next_start_after, 2, &rest).ok());
  EXPECT_TRUE(rest.names.empty());
  EXPECT_FALSE(rest.truncated);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ConformanceTest,
                         ::testing::Values(NamedFactory{"Mantle", &MakeMantle},
                                           NamedFactory{"Tectonic", &MakeTectonic},
                                           NamedFactory{"DBtable", &MakeDbTable},
                                           NamedFactory{"InfiniFS", &MakeInfiniFs},
                                           NamedFactory{"LocoFS", &MakeLocoFs}),
                         [](const ::testing::TestParamInfo<NamedFactory>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace mantle
