// Parameterized property sweeps over the core data structures: each suite
// checks an invariant across randomized inputs (seeds) or a configuration
// dimension (k, thread counts, distributions).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "src/common/histogram.h"
#include "src/common/path.h"
#include "src/common/random.h"
#include "src/index/index_replica.h"
#include "src/index/prefix_tree.h"
#include "src/index/removal_list.h"
#include "src/index/top_dir_path_cache.h"

namespace mantle {
namespace {

// --- PrefixTree vs. a reference set ---------------------------------------------

class PrefixTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomPath(Rng& rng, int max_depth = 5, int name_space = 4) {
  const uint64_t depth = rng.Uniform(max_depth) + 1;
  std::string path;
  for (uint64_t level = 0; level < depth; ++level) {
    path += "/c" + std::to_string(rng.Uniform(name_space));
  }
  return path;
}

TEST_P(PrefixTreePropertyTest, MatchesReferenceSetUnderRandomOps) {
  Rng rng(GetParam());
  PrefixTree tree;
  std::set<std::string> reference;

  for (int step = 0; step < 600; ++step) {
    const uint64_t action = rng.Uniform(100);
    const std::string path = RandomPath(rng);
    if (action < 50) {
      tree.Insert(path);
      reference.insert(path);
    } else if (action < 70) {
      tree.Remove(path);
      reference.erase(path);
    } else if (action < 85) {
      // Subtree removal: both sides drop everything prefixed by `path`.
      auto removed = tree.RemoveSubtree(path);
      std::set<std::string> expected_removed;
      for (auto it = reference.begin(); it != reference.end();) {
        if (IsPathPrefix(path, *it)) {
          expected_removed.insert(*it);
          it = reference.erase(it);
        } else {
          ++it;
        }
      }
      EXPECT_EQ(std::set<std::string>(removed.begin(), removed.end()), expected_removed)
          << "subtree " << path;
    } else {
      EXPECT_EQ(tree.Contains(path), reference.contains(path)) << path;
    }
    ASSERT_EQ(tree.Size(), reference.size());
  }
  // Full-collection audit from the root.
  auto all = tree.CollectSubtree("/");
  EXPECT_EQ(std::set<std::string>(all.begin(), all.end()), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTreePropertyTest, ::testing::Values(11, 22, 33, 44, 55));

// --- TopDirPathCache under concurrent mixed load -----------------------------------

class PathCachePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PathCachePropertyTest, NeverServesAnEntryItWasNotGiven) {
  const int threads = GetParam();
  TopDirPathCache cache;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      Rng rng(1000 + t);
      for (int i = 0; i < 3000; ++i) {
        const uint64_t key_index = rng.Uniform(64);
        const std::string prefix = "/p" + std::to_string(key_index);
        const uint64_t action = rng.Uniform(3);
        if (action == 0) {
          // The entry's id always encodes its key: torn reads would surface
          // as an id/key mismatch.
          cache.TryInsert(prefix, PathCacheEntry{1000 + key_index, kPermAll});
        } else if (action == 1) {
          cache.Erase(prefix);
        } else {
          auto hit = cache.Lookup(prefix);
          if (hit.has_value() && hit->dir_id != 1000 + key_index) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  stop.store(true);
  EXPECT_EQ(violations.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, PathCachePropertyTest, ::testing::Values(2, 4, 8));

// --- RemovalList under concurrent writers + one invalidator -------------------------

class RemovalListPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RemovalListPropertyTest, EveryInsertIsEventuallyRetiredExactlyOnce) {
  const int writers = GetParam();
  RemovalList list;
  constexpr int kPerWriter = 400;

  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> purged{0};
  std::thread invalidator([&]() {
    while (!writers_done.load(std::memory_order_acquire) || !list.Empty()) {
      purged.fetch_add(list.RunMaintenancePass([](const std::string&) {}));
    }
    // Final drain.
    for (int i = 0; i < 4; ++i) {
      list.RunMaintenancePass([](const std::string&) {});
    }
  });

  std::vector<std::thread> producers;
  for (int w = 0; w < writers; ++w) {
    producers.emplace_back([&, w]() {
      Rng rng(77 + w);
      for (int i = 0; i < kPerWriter; ++i) {
        auto token = list.Insert("/w" + std::to_string(w) + "/" + std::to_string(i));
        // Hold the entry "pending" briefly sometimes, exercising the
        // purged-but-not-done state.
        if (rng.Uniform(4) == 0) {
          std::this_thread::yield();
        }
        list.MarkDone(token);
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  writers_done.store(true, std::memory_order_release);
  invalidator.join();

  const auto stats = list.stats();
  EXPECT_EQ(stats.inserts, static_cast<uint64_t>(writers) * kPerWriter);
  EXPECT_EQ(stats.removals, stats.inserts);   // exactly once retired
  EXPECT_EQ(purged.load(), stats.inserts);    // exactly once purged
  EXPECT_TRUE(list.Empty());
}

INSTANTIATE_TEST_SUITE_P(Writers, RemovalListPropertyTest, ::testing::Values(1, 2, 4, 6));

// --- Histogram percentile bounds over distributions ---------------------------------

struct DistributionCase {
  const char* name;
  uint64_t seed;
  bool zipfian;
};

class HistogramPropertyTest : public ::testing::TestWithParam<DistributionCase> {};

TEST_P(HistogramPropertyTest, PercentilesBracketExactOrderStatistics) {
  const DistributionCase& param = GetParam();
  Rng rng(param.seed);
  ZipfianGenerator zipf(1'000'000, 0.99, param.seed);
  Histogram histogram;
  std::vector<int64_t> samples;
  for (int i = 0; i < 20'000; ++i) {
    const int64_t value = param.zipfian ? static_cast<int64_t>(zipf.Next() + 1)
                                        : static_cast<int64_t>(rng.Uniform(50'000'000) + 1);
    samples.push_back(value);
    histogram.Record(value);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const size_t rank = std::min(
        samples.size() - 1, static_cast<size_t>(p / 100.0 * static_cast<double>(samples.size())));
    const double exact = static_cast<double>(samples[rank]);
    const double approx = static_cast<double>(histogram.Percentile(p));
    // Log-bucketed histograms guarantee bounded relative error.
    EXPECT_NEAR(approx, exact, std::max(4.0, exact * 0.07)) << param.name << " p" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramPropertyTest,
                         ::testing::Values(DistributionCase{"uniform_a", 1, false},
                                           DistributionCase{"uniform_b", 2, false},
                                           DistributionCase{"zipf_a", 3, true},
                                           DistributionCase{"zipf_b", 4, true}),
                         [](const ::testing::TestParamInfo<DistributionCase>& info) {
                           return info.param.name;
                         });

// --- IndexReplica resolution correctness across k ------------------------------------

class TruncateKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncateKPropertyTest, ResolutionIdenticalForAnyK) {
  Network network(NetworkOptions{.zero_latency = true});
  IndexNodeOptions options;
  options.truncate_k = GetParam();
  options.start_invalidator = false;
  IndexReplica replica(&network, options);

  // A random tree of 200 directories.
  Rng rng(99);
  std::vector<std::pair<std::string, InodeId>> dirs{{"", kRootId}};
  InodeId next_id = 2;
  for (int i = 0; i < 200; ++i) {
    const auto& [parent_path, parent_id] = dirs[rng.Uniform(dirs.size())];
    const std::string name = "d" + std::to_string(i);
    replica.LoadDir(parent_id, name, next_id, kPermAll);
    dirs.push_back({parent_path + "/" + name, next_id});
    ++next_id;
  }
  // Every path resolves to its exact id, twice (cold, then cache-assisted).
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 1; i < dirs.size(); ++i) {
      auto outcome = replica.ResolveDir(SplitPath(dirs[i].first));
      ASSERT_TRUE(outcome.ok()) << dirs[i].first << " k=" << GetParam();
      EXPECT_EQ(outcome->dir_id, dirs[i].second) << dirs[i].first;
    }
  }
  // Cache respects the k truncation rule: no cached prefix is within k levels
  // of any resolved leaf... equivalently, no cached path has depth greater
  // than (max depth resolved - k). Weaker but checkable: every cached prefix
  // has a live directory at least k levels deeper.
  auto cached = replica.prefix_tree().CollectSubtree("/");
  for (const auto& prefix : cached) {
    bool has_deep_descendant = false;
    for (size_t i = 1; i < dirs.size() && !has_deep_descendant; ++i) {
      if (IsPathPrefix(prefix, dirs[i].first) &&
          PathDepth(dirs[i].first) >= PathDepth(prefix) + static_cast<size_t>(GetParam())) {
        has_deep_descendant = true;
      }
    }
    EXPECT_TRUE(has_deep_descendant) << prefix;
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, TruncateKPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mantle
