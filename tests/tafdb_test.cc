#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/tafdb/tafdb.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

class TafDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(FastNetworkOptions());
    TafDbOptions options = FastTafDbOptions();
    options.start_compactor = false;  // deterministic compaction in tests
    db_ = std::make_unique<TafDb>(network_.get(), options);
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<TafDb> db_;
};

TEST_F(TafDbTest, GetMissingReturnsNotFound) {
  EXPECT_TRUE(db_->Get(EntryKey(1, "nope")).status().IsNotFound());
}

TEST_F(TafDbTest, LoadAndGet) {
  db_->LoadPut(EntryKey(1, "a"), MetaValue{EntryType::kObject, 7, kPermAll, 99, 0, 0, 0, 1});
  auto row = db_->Get(EntryKey(1, "a"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size, 99u);
}

TEST_F(TafDbTest, ListChildrenAcrossLoads) {
  for (int i = 0; i < 5; ++i) {
    db_->LoadPut(EntryKey(3, "c" + std::to_string(i)),
                 MetaValue{EntryType::kObject, 10u + i, kPermAll, 0, 0, 0, 0, 3});
  }
  auto listing = db_->ListChildren(3);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 5u);
}

TEST_F(TafDbTest, InPlaceAttrUpdateWhenUncontended) {
  db_->LoadPut(AttrKey(5), MetaValue{EntryType::kAttrPrimary, 5, kPermAll, 0, 0, 0, 0, 1});
  EXPECT_FALSE(db_->DeltaModeActive(5));
  const uint64_t txn = db_->NextTxnId();
  WriteOp update = db_->MakeAttrUpdate(5, +1, true, txn);
  EXPECT_EQ(update.kind, WriteOp::Kind::kAddChildCount);
  ASSERT_TRUE(db_->Execute({update}, txn).ok());
  auto attr = db_->ReadDirAttr(5);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->child_count, 1);
}

TEST_F(TafDbTest, ForcedDeltaModeAppendsAndCompacts) {
  db_.reset();
  network_ = std::make_unique<Network>(FastNetworkOptions());
  TafDbOptions options = FastTafDbOptions();
  options.force_delta_records = true;
  options.start_compactor = false;
  db_ = std::make_unique<TafDb>(network_.get(), options);

  db_->LoadPut(AttrKey(5), MetaValue{EntryType::kAttrPrimary, 5, kPermAll, 0, 0, 0, 0, 1});
  for (int i = 0; i < 4; ++i) {
    const uint64_t txn = db_->NextTxnId();
    WriteOp update = db_->MakeAttrUpdate(5, +1, true, txn);
    EXPECT_EQ(update.kind, WriteOp::Kind::kPut);
    EXPECT_EQ(update.key.ts, txn);
    ASSERT_TRUE(db_->Execute({update}, txn).ok());
  }
  EXPECT_EQ(db_->PendingCompactions(), 1u);
  // dirstat merges live deltas before compaction.
  EXPECT_EQ(db_->ReadDirAttr(5)->child_count, 4);
  db_->CompactAllPending();
  EXPECT_EQ(db_->PendingCompactions(), 0u);
  // Still exact after compaction, and the primary row carries it.
  EXPECT_EQ(db_->ReadDirAttr(5)->child_count, 4);
  EXPECT_EQ(db_->LocalGet(AttrKey(5))->child_count, 4);
}

TEST_F(TafDbTest, DeltaModeEliminatesConflictsUnderConcurrency) {
  db_.reset();
  network_ = std::make_unique<Network>(FastNetworkOptions());
  TafDbOptions options = FastTafDbOptions();
  options.force_delta_records = true;
  db_ = std::make_unique<TafDb>(network_.get(), options);  // compactor on

  db_->LoadPut(AttrKey(9), MetaValue{EntryType::kAttrPrimary, 9, kPermAll, 0, 0, 0, 0, 1});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kOps = 100;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kOps; ++i) {
        const uint64_t txn = db_->NextTxnId();
        if (!db_->Execute({db_->MakeAttrUpdate(9, +1, true, txn)}, txn).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Delta records are conflict-free appends: zero aborts.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db_->txn_stats().aborted.load(), 0u);
  db_->CompactAllPending();
  EXPECT_EQ(db_->ReadDirAttr(9)->child_count, kThreads * kOps);
}

TEST_F(TafDbTest, ContentionDetectorActivatesDeltaMode) {
  ContentionOptions contention;
  contention.abort_threshold = 3;
  ContentionTracker tracker(contention);
  EXPECT_FALSE(tracker.DeltaModeActive(1));
  tracker.NoteAbort(1);
  tracker.NoteAbort(1);
  EXPECT_FALSE(tracker.DeltaModeActive(1));
  tracker.NoteAbort(1);
  EXPECT_TRUE(tracker.DeltaModeActive(1));
  EXPECT_FALSE(tracker.DeltaModeActive(2));
  EXPECT_EQ(tracker.total_aborts(), 3u);
}

TEST_F(TafDbTest, ContentionDetectorCoolsDown) {
  ContentionOptions contention;
  contention.abort_threshold = 2;
  contention.cooldown_nanos = 10'000'000;  // 10 ms
  ContentionTracker tracker(contention);
  tracker.NoteAbort(1);
  tracker.NoteAbort(1);
  EXPECT_TRUE(tracker.DeltaModeActive(1));
  PreciseSleep(25'000'000);
  EXPECT_FALSE(tracker.DeltaModeActive(1));
}

TEST_F(TafDbTest, ContentionWindowResets) {
  ContentionOptions contention;
  contention.abort_threshold = 3;
  contention.window_nanos = 5'000'000;  // 5 ms
  ContentionTracker tracker(contention);
  tracker.NoteAbort(1);
  PreciseSleep(10'000'000);
  tracker.NoteAbort(1);
  PreciseSleep(10'000'000);
  tracker.NoteAbort(1);
  // Aborts spread across windows never accumulate to the threshold.
  EXPECT_FALSE(tracker.DeltaModeActive(1));
}

TEST_F(TafDbTest, EndToEndAbortsFlipDeltaModeOn) {
  db_.reset();
  network_ = std::make_unique<Network>(FastNetworkOptions());
  TafDbOptions options = FastTafDbOptions();
  options.contention.abort_threshold = 2;
  db_ = std::make_unique<TafDb>(network_.get(), options);
  db_->LoadPut(AttrKey(3), MetaValue{EntryType::kAttrPrimary, 3, kPermAll, 0, 0, 0, 0, 1});

  // Manufacture aborts: hold a foreign lock on the attribute row. The first
  // two in-place updates abort; that crosses the threshold, so the THIRD
  // update routes through a conflict-free delta row and succeeds even though
  // the primary row is still locked - delta records rescuing a contended
  // directory end to end.
  Shard* shard = db_->shard_map()->Route(3);
  ASSERT_TRUE(shard->TryLockKey(AttrKey(3), 424242));
  for (int i = 0; i < 2; ++i) {
    const uint64_t txn = db_->NextTxnId();
    EXPECT_TRUE(db_->Execute({db_->MakeAttrUpdate(3, 1, true, txn)}, txn).IsAborted());
  }
  EXPECT_TRUE(db_->DeltaModeActive(3));
  const uint64_t txn = db_->NextTxnId();
  WriteOp update = db_->MakeAttrUpdate(3, 1, true, txn);
  EXPECT_EQ(update.key.ts, txn);  // delta row keyed by the txn timestamp
  EXPECT_TRUE(db_->Execute({update}, txn).ok());
  shard->UnlockKey(AttrKey(3), 424242);
  EXPECT_EQ(db_->ReadDirAttr(3)->child_count, 1);
}

TEST_F(TafDbTest, ApplyAtomicSingleShardRejectsCrossShard) {
  InodeId a = 1;
  InodeId b = 2;
  while (db_->shard_map()->ShardIndex(b) == db_->shard_map()->ShardIndex(a)) {
    ++b;
  }
  WriteOp op1;
  op1.key = EntryKey(a, "x");
  WriteOp op2;
  op2.key = EntryKey(b, "y");
  EXPECT_EQ(db_->ApplyAtomicSingleShard({op1, op2}).code(), StatusCode::kInvalidArgument);
}

TEST_F(TafDbTest, BackgroundCompactorDrainsDeltas) {
  db_.reset();
  network_ = std::make_unique<Network>(FastNetworkOptions());
  TafDbOptions options = FastTafDbOptions();
  options.force_delta_records = true;
  options.compaction_interval_nanos = 500'000;  // 0.5 ms cadence
  db_ = std::make_unique<TafDb>(network_.get(), options);
  db_->LoadPut(AttrKey(6), MetaValue{EntryType::kAttrPrimary, 6, kPermAll, 0, 0, 0, 0, 1});
  for (int i = 0; i < 10; ++i) {
    const uint64_t txn = db_->NextTxnId();
    ASSERT_TRUE(db_->Execute({db_->MakeAttrUpdate(6, 1, false, txn)}, txn).ok());
  }
  // Wait for the compactor to fold everything.
  const int64_t deadline = MonotonicNanos() + 2'000'000'000;
  while (MonotonicNanos() < deadline &&
         !db_->shard_map()->Route(6)->ScanDeltas(6).empty()) {
    PreciseSleep(1'000'000);
  }
  EXPECT_TRUE(db_->shard_map()->Route(6)->ScanDeltas(6).empty());
  EXPECT_EQ(db_->ReadDirAttr(6)->child_count, 10);
}

}  // namespace
}  // namespace mantle
