// Shared fixtures: fast configurations for unit/integration tests.
//
// Tests run with zero injected network latency and zero simulated fsync so
// correctness is exercised at full speed; latency-model behaviour has its own
// targeted tests.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include "src/core/mantle_service.h"
#include "src/net/network.h"
#include "src/raft/group.h"
#include "src/tafdb/tafdb.h"

namespace mantle {

inline NetworkOptions FastNetworkOptions() {
  NetworkOptions options;
  options.zero_latency = true;
  return options;
}

inline RaftOptions FastRaftOptions() {
  RaftOptions options;
  options.fsync_nanos = 0;
  options.heartbeat_interval_nanos = 5'000'000;        // 5 ms
  options.election_timeout_min_nanos = 80'000'000;     // 80 ms
  options.election_timeout_max_nanos = 160'000'000;    // 160 ms
  options.election_poll_nanos = 5'000'000;             // 5 ms
  options.workers_per_node = 4;
  return options;
}

inline TafDbOptions FastTafDbOptions() {
  TafDbOptions options;
  options.num_shards = 8;
  options.num_servers = 2;
  options.workers_per_server = 2;
  return options;
}

inline MantleOptions FastMantleOptions() {
  MantleOptions options;
  options.tafdb = FastTafDbOptions();
  options.index.num_voters = 3;
  options.index.num_learners = 0;
  options.index.raft = FastRaftOptions();
  options.index.node.invalidator_interval_nanos = 200'000;  // 0.2 ms
  return options;
}

}  // namespace mantle

#endif  // TESTS_TEST_UTIL_H_
