#include <gtest/gtest.h>

#include <memory>

#include "src/workload/trace_replay.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

TEST(TraceParseTest, ParsesEveryVerb) {
  const std::string text =
      "# a comment\n"
      "\n"
      "mkdir /a\n"
      "create /a/o 4096\n"
      "objstat /a/o\n"
      "dirstat /a\n"
      "readdir /a\n"
      "lookup /a/o\n"
      "rename /a /b\n"
      "delete /b/o\n"
      "rmdir /b\n";
  auto ops = ParseTrace(text);
  ASSERT_TRUE(ops.ok());
  ASSERT_EQ(ops->size(), 9u);
  EXPECT_EQ((*ops)[0].type, TraceOpType::kMkdir);
  EXPECT_EQ((*ops)[1].bytes, 4096u);
  EXPECT_EQ((*ops)[6].type, TraceOpType::kRename);
  EXPECT_EQ((*ops)[6].path2, "/b");
}

TEST(TraceParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace("create /x\n").ok());     // missing size
  EXPECT_FALSE(ParseTrace("rename /x\n").ok());     // missing destination
  EXPECT_FALSE(ParseTrace("explode /x\n").ok());    // unknown verb
  EXPECT_FALSE(ParseTrace("mkdir\n").ok());         // missing path
  auto err = ParseTrace("mkdir /ok\nbroken\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

TEST(TraceParseTest, FormatRoundTrips) {
  const std::string text =
      "mkdir /a\n"
      "create /a/o 128\n"
      "rename /a /b\n";
  auto ops = ParseTrace(text);
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(FormatTrace(*ops), text);
}

TEST(TraceSynthesisTest, RespectsCountAndReplayability) {
  NamespaceSpec spec;
  spec.num_dirs = 100;
  spec.num_objects = 400;
  GeneratedNamespace ns = GenerateNamespace(spec);
  TraceMix mix;
  auto ops = SynthesizeTrace(ns, mix, 500, 7);
  EXPECT_EQ(ops.size(), 502u);  // + the two mutation-root mkdirs
  // Deterministic for a seed.
  EXPECT_EQ(FormatTrace(SynthesizeTrace(ns, mix, 500, 7)), FormatTrace(ops));
  // Deletes only target previously created objects; renames only created dirs.
  std::set<std::string> created;
  for (const auto& op : ops) {
    if (op.type == TraceOpType::kCreate || op.type == TraceOpType::kMkdir) {
      created.insert(op.path);
    }
    if (op.type == TraceOpType::kDelete || op.type == TraceOpType::kRename) {
      EXPECT_TRUE(created.contains(op.path)) << op.path;
    }
  }
}

TEST(TraceReplayTest, SyntheticTraceReplaysCleanlyOnMantle) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  NamespaceSpec spec;
  spec.num_dirs = 100;
  spec.num_objects = 400;
  GeneratedNamespace ns = PopulateNamespace(&service, spec);
  auto ops = SynthesizeTrace(ns, TraceMix{}, 400, 11);
  // Single worker preserves the trace's intra-dependency order exactly.
  WorkloadResult result = ReplayTrace(&service, ops, 1);
  EXPECT_GE(result.ops, 400u);
  EXPECT_EQ(result.errors, 0u) << "errors replaying synthetic trace";
}

TEST(TraceReplayTest, ParallelReplayToleratesReorderedDependencies) {
  // Striping a trace across workers reorders dependent mutations (a delete
  // may run before its create); those surface as op errors, never as crashes
  // or corrupted state.
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  NamespaceSpec spec;
  spec.num_dirs = 100;
  spec.num_objects = 400;
  GeneratedNamespace ns = PopulateNamespace(&service, spec);
  auto ops = SynthesizeTrace(ns, TraceMix{}, 400, 11);
  WorkloadResult result = ReplayTrace(&service, ops, 4);
  EXPECT_GE(result.ops, 400u);
  EXPECT_LT(result.errors, result.ops / 10);  // only the reordered tail fails
  // Read targets are untouched by the mutation subtree: spot-check.
  for (size_t i = 0; i < ns.objects.size(); i += 131) {
    EXPECT_TRUE(service.StatObject(ns.objects[i]).ok());
  }
}

TEST(TraceReplayTest, HandwrittenTraceDrivesRealOps) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  auto ops = ParseTrace(
      "mkdir /t\n"
      "create /t/o 64\n"
      "objstat /t/o\n"
      "mkdir /t/d\n"
      "rename /t/d /t/d2\n"
      "delete /t/o\n");
  ASSERT_TRUE(ops.ok());
  WorkloadResult result = ReplayTrace(&service, *ops, 1);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_TRUE(service.StatDir("/t/d2").ok());
  EXPECT_TRUE(service.StatObject("/t/o").status.IsNotFound());
}

}  // namespace
}  // namespace mantle
