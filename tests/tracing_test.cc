// Distributed causal tracing (ISSUE 7): cross-RPC span propagation,
// queue/service/wire attribution, orphan handling, the tail-sampled flight
// recorder, and the critical-path analyzer.
//
// The recurring setup: an op carries an OpTrace through its OpContext; every
// server-side handler records its own handler-local spans and deposits them
// into its server's SpanDepot; Network::StitchTrace (run by the op's
// OpRecorder as the op returns) grafts the deposited subtrees back under the
// caller-side rpc spans. These tests drive that pipeline through real
// MantleService operations over the simulated fabric, including hostile
// schedules (drops, pauses, caller timeouts).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/critical_path.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/span_depot.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

using obs::OpTrace;
using obs::SpanKind;

// Deep enough that the parent's resolution cannot be served by the
// TopDirPathCache alone - the lookup must RPC the IndexNode.
constexpr const char* kDeepDir = "/t0/t1/t2/t3/t4";

void MkdirChain(MantleService& service, const std::string& leaf) {
  std::string path;
  size_t from = 1;
  while (from <= leaf.size()) {
    const size_t next = leaf.find('/', from);
    path = leaf.substr(0, next == std::string::npos ? leaf.size() : next);
    ASSERT_TRUE(service.Mkdir(path).ok()) << path;
    if (next == std::string::npos) {
      break;
    }
    from = next + 1;
  }
}

bool AllClosed(const std::vector<OpTrace::Span>& spans) {
  return std::all_of(spans.begin(), spans.end(),
                     [](const OpTrace::Span& span) { return span.end_nanos != 0; });
}

std::set<std::string> ServersIn(const std::vector<OpTrace::Span>& spans) {
  std::set<std::string> servers;
  for (const auto& span : spans) {
    if (!span.server.empty()) {
      servers.insert(span.server);
    }
  }
  return servers;
}

bool HasKind(const std::vector<OpTrace::Span>& spans, SpanKind kind) {
  return std::any_of(spans.begin(), spans.end(),
                     [kind](const OpTrace::Span& span) { return span.kind == kind; });
}

// --- tentpole: cross-RPC propagation -----------------------------------------

TEST(TracingTest, SpansPropagateAcrossServersWithQueueAndServiceSegments) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  MkdirChain(service, kDeepDir);

  OpContext ctx = service.MakeOpContext();
  OpTrace trace;
  ctx.trace = &trace;
  ASSERT_TRUE(service.StatDir(ctx, kDeepDir).ok());

  const auto& spans = trace.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().name, "stat_dir");
  EXPECT_TRUE(AllClosed(spans)) << trace.Render();

  // The op crossed at least two logical machines (IndexNode replica for the
  // lookup, a TafDB server for the attr read), and each hop contributed its
  // own queue-wait and service segments.
  const std::set<std::string> servers = ServersIn(spans);
  EXPECT_GE(servers.size(), 2u) << trace.Render();
  EXPECT_TRUE(std::any_of(servers.begin(), servers.end(), [](const std::string& s) {
    return s.find("-index") != std::string::npos;
  })) << trace.Render();
  EXPECT_TRUE(std::any_of(servers.begin(), servers.end(), [](const std::string& s) {
    return s.rfind("tafdb-", 0) == 0;
  })) << trace.Render();
  EXPECT_TRUE(HasKind(spans, SpanKind::kQueue)) << trace.Render();
  EXPECT_TRUE(HasKind(spans, SpanKind::kService)) << trace.Render();

  // Grafted handler spans nest under the caller-side rpc span that issued
  // them: every queue/service span has a parent.
  for (const auto& span : spans) {
    if (span.kind == SpanKind::kQueue || span.kind == SpanKind::kService) {
      EXPECT_GE(span.parent, 0) << span.name;
    }
  }
}

TEST(TracingTest, CriticalPathPartitionIsExact) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  MkdirChain(service, kDeepDir);

  for (int i = 0; i < 5; ++i) {
    OpContext ctx = service.MakeOpContext();
    OpTrace trace;
    ctx.trace = &trace;
    ASSERT_TRUE(service.StatDir(ctx, kDeepDir).ok());

    const obs::PathAttribution path = obs::AnalyzeCriticalPath(trace.spans());
    ASSERT_GT(path.root_nanos, 0);
    // Exact partition: every nanosecond of the root lands in exactly one
    // (server, kind) bucket.
    EXPECT_EQ(path.AttributedNanos(), path.root_nanos) << trace.Render();
    int64_t hop_sum = 0;
    for (const auto& hop : path.hops) {
      hop_sum += hop.nanos;
    }
    EXPECT_EQ(hop_sum, path.root_nanos);
    EXPECT_GT(path.service_nanos, 0) << trace.Render();
  }
}

// --- tentpole: traces survive a hostile network ------------------------------

TEST(TracingTest, DroppedRpcsStillYieldClosedStitchableTraces) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 500'000'000;  // every op resolves
  MantleService service(&network, options);
  MkdirChain(service, kDeepDir);

  FaultRule drops;
  drops.drop_probability = 0.4;
  network.faults().SetRule("tafdb", drops);

  for (int i = 0; i < 8; ++i) {
    OpContext ctx = service.MakeOpContext();
    OpTrace trace;
    ctx.trace = &trace;
    OpResult result = service.StatDir(ctx, kDeepDir);
    // ok or timeout both acceptable under drops; the trace must be complete
    // and closed either way.
    ASSERT_FALSE(trace.spans().empty());
    EXPECT_TRUE(AllClosed(trace.spans()))
        << result.status.ToString() << "\n" << trace.Render();
    EXPECT_GT(trace.RootDurationNanos(), 0);
  }
  network.faults().ClearAll();
}

TEST(TracingTest, TimedOutCallerGetsOrphanBatchesNotLateGrafts) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 120'000'000;  // 120 ms, far below the pause
  MantleService service(&network, options);
  MkdirChain(service, kDeepDir);
  // Warm path caches so the timed-out op's lookup is local and the op's only
  // remote dependency is the paused TafDB read.
  ASSERT_TRUE(service.StatDir(kDeepDir).ok());

  network.faults().PauseServer("tafdb-0");
  network.faults().PauseServer("tafdb-1");

  OpContext ctx = service.MakeOpContext();
  OpTrace trace;
  ctx.trace = &trace;
  OpResult result = service.StatDir(ctx, kDeepDir);
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout) << result.status;
  ASSERT_FALSE(trace.spans().empty());
  EXPECT_TRUE(AllClosed(trace.spans())) << trace.Render();
  // The handler is still stuck behind the pause gate: its spans cannot have
  // been stitched into this trace.
  EXPECT_FALSE(std::any_of(trace.spans().begin(), trace.spans().end(),
                           [](const OpTrace::Span& s) {
                             return s.kind == SpanKind::kService &&
                                    s.server.rfind("tafdb-", 0) == 0;
                           }))
      << trace.Render();
  const size_t spans_at_op_end = trace.spans().size();

  // Release the pause; the abandoned handler finishes, records its spans and
  // deposits them - into the server-local depot, never into this trace.
  network.faults().ResumeServer("tafdb-0");
  network.faults().ResumeServer("tafdb-1");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (network.UnclaimedSpanBatches() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(network.UnclaimedSpanBatches(), 0u);
  EXPECT_EQ(trace.spans().size(), spans_at_op_end);
}

TEST(TracingTest, HedgedDuplicateMarksAndStitchesIntoTheCallerTrace) {
  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 2'000'000'000;
  options.index.hedge.enable = true;
  options.index.hedge.quantile = 0.5;
  options.index.hedge.min_samples = 4;
  options.index.hedge.min_delay_nanos = 200'000;
  options.index.hedge.max_delay_nanos = 5'000'000;
  MantleService service(&network, options);
  MkdirChain(service, "/h0/h1/h2/h3/h4");
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.StatDir("/h0/h1/h2/h3/h4").ok());
  }
  ASSERT_GE(service.index()->read_latency().samples(), 4);

  RaftNode* leader = service.index()->group()->WaitForLeader();
  ASSERT_NE(leader, nullptr);
  network.faults().PauseServer(leader->server()->name());

  bool saw_hedge_marker = false;
  for (int i = 0; i < 5 && !saw_hedge_marker; ++i) {
    OpContext ctx = service.MakeOpContext();
    OpTrace trace;
    ctx.trace = &trace;
    ASSERT_TRUE(service.StatDir(ctx, "/h0/h1/h2/h3/h4").ok());
    EXPECT_TRUE(AllClosed(trace.spans())) << trace.Render();
    for (const auto& span : trace.spans()) {
      if (span.name.rfind("hedge.fire.", 0) == 0) {
        saw_hedge_marker = true;
      }
    }
  }
  EXPECT_TRUE(saw_hedge_marker);
  network.faults().ResumeServer(leader->server()->name());
}

// --- satellite: ElapsedNanos -------------------------------------------------

TEST(TracingTest, ElapsedNanosWorksMidFlightAndConvergesWhenClosed) {
  OpTrace empty;
  EXPECT_EQ(empty.ElapsedNanos(), 0);

  OpTrace trace("op");
  EXPECT_EQ(trace.RootDurationNanos(), 0);  // root still open
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const int64_t mid = trace.ElapsedNanos();
  EXPECT_GT(mid, 0);  // "so far", not 0
  trace.End(0);
  const int64_t closed = trace.ElapsedNanos();
  EXPECT_EQ(closed, trace.RootDurationNanos());
  EXPECT_GE(closed, mid);
  // Stable once closed.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(trace.ElapsedNanos(), closed);
}

// --- flight recorder ---------------------------------------------------------

TEST(TracingTest, FlightRecorderRetainsEveryDeadlineExceededOp) {
  auto& recorder = obs::FlightRecorder::Instance();
  obs::FlightRecorder::Options opts;
  opts.error_capacity = 256;  // hold every timeout this run can produce
  recorder.Configure(opts);

  Network network(FastNetworkOptions());
  MantleOptions options = FastMantleOptions();
  options.op_deadline_nanos = 150'000'000;
  MantleService service(&network, options);
  MkdirChain(service, kDeepDir);
  ASSERT_TRUE(service.StatDir(kDeepDir).ok());

  // Seeded chaos: heavy drops on the TafDB fleet force a stream of
  // deadline-exceeded ops among successes.
  network.faults().Reseed(0xc4a05);
  FaultRule drops;
  drops.drop_probability = 0.6;
  network.faults().SetRule("tafdb", drops);

  std::vector<uint64_t> timed_out_ids;
  for (int i = 0; i < 24; ++i) {
    OpContext ctx = service.MakeOpContext();
    OpTrace trace;
    ctx.trace = &trace;
    OpResult result = service.StatDir(ctx, kDeepDir);
    if (result.status.code() == StatusCode::kTimeout) {
      timed_out_ids.push_back(trace.trace_id());
    }
  }
  network.faults().ClearAll();

  ASSERT_FALSE(timed_out_ids.empty()) << "chaos plan produced no timeouts";
  for (uint64_t trace_id : timed_out_ids) {
    EXPECT_TRUE(recorder.Contains(trace_id)) << "trace " << trace_id << " not retained";
  }
  // And they are queryable as errors in the snapshot.
  size_t error_kept = 0;
  for (const auto& kept : recorder.Snapshot()) {
    if (kept.keep_reason == "error") {
      ++error_kept;
    }
  }
  EXPECT_GE(error_kept, timed_out_ids.size());
  recorder.Configure(obs::FlightRecorder::Options{});
}

TEST(TracingTest, FlightRecorderTailKeepsTheSlowQuantileAndExemplars) {
  auto& recorder = obs::FlightRecorder::Instance();
  recorder.Configure(obs::FlightRecorder::Options{});

  // Offer 64 fast ops and 4 slow outliers through hand-built traces (a
  // closed root span whose duration we dictate).
  std::vector<uint64_t> slow_ids;
  for (int i = 0; i < 68; ++i) {
    const bool slow = i >= 64;
    OpTrace shaped;
    shaped.AddClosedSpan("synthetic", 0, slow ? 50'000'000 : 1'000'000, SpanKind::kLogic, "");
    recorder.Offer(shaped, /*ok=*/true, /*deadline_exceeded=*/false);
    recorder.NoteExemplar("synthetic.latency_nanos", slow ? 50'000'000 : 1'000'000,
                          shaped.trace_id());
    if (slow) {
      slow_ids.push_back(shaped.trace_id());
    }
  }
  for (uint64_t trace_id : slow_ids) {
    EXPECT_TRUE(recorder.Contains(trace_id)) << trace_id;
  }
  // The slow outliers landed in a higher histogram bucket than the fast ops,
  // and that bucket's exemplar links back to one of them.
  const auto exemplars = recorder.Exemplars("synthetic.latency_nanos");
  ASSERT_GE(exemplars.size(), 2u);
  bool slow_bucket_linked = false;
  for (const auto& exemplar : exemplars) {
    if (exemplar.value_nanos == 50'000'000 &&
        std::find(slow_ids.begin(), slow_ids.end(), exemplar.trace_id) != slow_ids.end()) {
      slow_bucket_linked = true;
    }
  }
  EXPECT_TRUE(slow_bucket_linked);
  recorder.Configure(obs::FlightRecorder::Options{});
}

// --- acceptance: analyzer vs hand-instrumented breakdown ---------------------

TEST(TracingTest, TraceDerivedBreakdownMatchesHandInstrumentedWithin10Percent) {
  // Paper-scaled latency model (not zero_latency): a seeded slow lookup where
  // phases are macroscopic, so the two measurements' fixed overheads vanish.
  NetworkOptions net_options;
  net_options.rtt_nanos = 200'000;
  net_options.db_row_access_nanos = 300'000;
  net_options.mem_index_access_nanos = 150'000;
  Network network(net_options);
  MantleService service(&network, FastMantleOptions());
  MkdirChain(service, kDeepDir);
  ASSERT_TRUE(service.StatDir(kDeepDir).ok());

  double trace_lookup = 0;
  double hand_lookup = 0;
  double trace_root = 0;
  double hand_total = 0;
  int sampled = 0;
  for (int i = 0; i < 32; ++i) {
    OpContext ctx = service.MakeOpContext();
    OpTrace trace;
    ctx.trace = &trace;
    OpResult result = service.StatDir(ctx, kDeepDir);
    ASSERT_TRUE(result.ok()) << result.status;
    const obs::PathAttribution path = obs::AnalyzeCriticalPath(trace.spans());
    ASSERT_GT(path.root_nanos, 0);
    trace_lookup += static_cast<double>(
        obs::TotalDurationOfNamed(trace.spans(), "lookup"));
    hand_lookup += static_cast<double>(result.breakdown.lookup_nanos);
    trace_root += static_cast<double>(path.root_nanos);
    hand_total += static_cast<double>(result.breakdown.total_nanos());
    ++sampled;
  }
  ASSERT_GT(sampled, 0);
  ASSERT_GT(hand_lookup, 0);
  const double lookup_gap = std::abs(trace_lookup - hand_lookup) /
                            std::max(trace_lookup, hand_lookup);
  const double total_gap = std::abs(trace_root - hand_total) /
                           std::max(trace_root, hand_total);
  EXPECT_LT(lookup_gap, 0.10) << "trace " << trace_lookup << " hand " << hand_lookup;
  EXPECT_LT(total_gap, 0.10) << "trace " << trace_root << " hand " << hand_total;
}

// --- exporter ----------------------------------------------------------------

TEST(TracingTest, ChromeTraceExportIsWellFormedAndCarriesSummaries) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  MkdirChain(service, kDeepDir);

  auto& recorder = obs::FlightRecorder::Instance();
  recorder.Configure(obs::FlightRecorder::Options{});
  for (int i = 0; i < 4; ++i) {
    OpContext ctx = service.MakeOpContext();
    OpTrace trace;
    ctx.trace = &trace;
    ASSERT_TRUE(service.StatDir(ctx, kDeepDir).ok());
  }
  ASSERT_GT(recorder.Size(), 0u);

  const std::string json = service.DumpSlowTraces(8);
  // Structural smoke checks (check.sh parses it with a real JSON parser).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"mantleTraceSummaries\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("tafdb-"), std::string::npos);
  EXPECT_EQ(json.find("\"dur\": -"), std::string::npos);  // no negative durations
  recorder.Configure(obs::FlightRecorder::Options{});
}

// --- depot mechanics (unit level) --------------------------------------------

TEST(TracingTest, SpanDepotEvictsOldestUnclaimedBatches) {
  obs::SpanDepot depot(4);
  for (uint64_t id = 1; id <= 6; ++id) {
    obs::SpanBatch batch;
    batch.trace_id = id;
    batch.spans.push_back(OpTrace::Span{"service", 0, 10, -1, 0, id, SpanKind::kService, "s"});
    depot.Deposit(std::move(batch));
  }
  EXPECT_EQ(depot.UnclaimedCount(), 4u);
  EXPECT_EQ(depot.evicted(), 2u);
  // The oldest two (ids 1, 2) aged out.
  EXPECT_TRUE(depot.Claim(1).empty());
  EXPECT_EQ(depot.Claim(5).size(), 1u);
  EXPECT_EQ(depot.claimed(), 1u);
}

TEST(TracingTest, GraftRefusesBatchesWithoutAnchorAndKeepsThemIntact) {
  OpTrace trace;
  const int root = trace.Begin("op");
  trace.End(root);

  std::vector<OpTrace::Span> batch;
  batch.push_back(OpTrace::Span{"service", 5, 10, -1, 0, 999, SpanKind::kService, "s"});
  // Anchor uid 12345 is not in the trace: graft must refuse and leave the
  // batch for the orphan path.
  EXPECT_FALSE(trace.Graft(batch, 12345));
  EXPECT_EQ(batch.size(), 1u);
  // Root-level graft (uid 0) always lands.
  EXPECT_TRUE(trace.Graft(batch, 0));
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(trace.spans().size(), 2u);
}

}  // namespace
}  // namespace mantle
