#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/txn/coordinator.h"

namespace mantle {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(NetworkOptions{.zero_latency = true});
    std::vector<ServerExecutor*> servers;
    for (int i = 0; i < 3; ++i) {
      servers.push_back(network_->AddServer("db-" + std::to_string(i), 2));
    }
    shards_ = std::make_unique<ShardMap>(8, servers);
    coordinator_ = std::make_unique<TxnCoordinator>(shards_.get(), network_.get());
  }

  // Two pids guaranteed to land on different shards.
  std::pair<InodeId, InodeId> TwoShardPids() {
    const InodeId a = 1;
    for (InodeId b = 2; b < 1000; ++b) {
      if (shards_->ShardIndex(b) != shards_->ShardIndex(a)) {
        return {a, b};
      }
    }
    ADD_FAILURE() << "no distinct shards found";
    return {1, 2};
  }

  static WriteOp Put(InodeId pid, const std::string& name, InodeId id,
                     WriteOp::Expect expect = WriteOp::Expect::kNone) {
    WriteOp op;
    op.kind = WriteOp::Kind::kPut;
    op.expect = expect;
    op.key = EntryKey(pid, name);
    op.value = MetaValue{EntryType::kObject, id, kPermAll, 0, 0, 0, 0, 0};
    return op;
  }

  std::unique_ptr<Network> network_;
  std::unique_ptr<ShardMap> shards_;
  std::unique_ptr<TxnCoordinator> coordinator_;
};

TEST_F(TxnTest, SingleShardCommit) {
  EXPECT_TRUE(coordinator_->Execute({Put(1, "a", 10)}).ok());
  EXPECT_TRUE(shards_->Route(1)->Get(EntryKey(1, "a")).has_value());
  EXPECT_EQ(coordinator_->stats().single_shard.load(), 1u);
  EXPECT_EQ(coordinator_->stats().committed.load(), 1u);
}

TEST_F(TxnTest, CrossShardCommitIsAtomicallyVisible) {
  auto [a, b] = TwoShardPids();
  EXPECT_TRUE(coordinator_->Execute({Put(a, "x", 10), Put(b, "y", 11)}).ok());
  EXPECT_TRUE(shards_->Route(a)->Get(EntryKey(a, "x")).has_value());
  EXPECT_TRUE(shards_->Route(b)->Get(EntryKey(b, "y")).has_value());
  EXPECT_EQ(coordinator_->stats().multi_shard.load(), 1u);
}

TEST_F(TxnTest, PreconditionFailureAbortsWholeTxn) {
  auto [a, b] = TwoShardPids();
  ASSERT_TRUE(coordinator_->Execute({Put(a, "dup", 10)}).ok());
  Status status = coordinator_->Execute(
      {Put(a, "dup", 11, WriteOp::Expect::kMustNotExist), Put(b, "other", 12)});
  EXPECT_TRUE(status.IsAlreadyExists());
  // The other shard's write must not have applied.
  EXPECT_FALSE(shards_->Route(b)->Get(EntryKey(b, "other")).has_value());
}

TEST_F(TxnTest, LockConflictAborts) {
  const MetaKey contended = EntryKey(1, "hot");
  Shard* shard = shards_->Route(1);
  ASSERT_TRUE(shard->TryLockKey(contended, 999));  // foreign lock
  Status status = coordinator_->Execute({Put(1, "hot", 10)});
  EXPECT_TRUE(status.IsAborted());
  EXPECT_EQ(coordinator_->stats().aborted.load(), 1u);
  shard->UnlockKey(contended, 999);
  EXPECT_TRUE(coordinator_->Execute({Put(1, "hot", 10)}).ok());
}

TEST_F(TxnTest, LocksReleasedAfterCommitAndAbort) {
  auto [a, b] = TwoShardPids();
  ASSERT_TRUE(coordinator_->Execute({Put(a, "k1", 1), Put(b, "k2", 2)}).ok());
  // Same keys committable again (locks were released).
  EXPECT_TRUE(coordinator_->Execute({Put(a, "k1", 3), Put(b, "k2", 4)}).ok());

  // Abort path: foreign lock on one participant.
  Shard* shard_b = shards_->Route(b);
  ASSERT_TRUE(shard_b->TryLockKey(EntryKey(b, "k2"), 777));
  EXPECT_TRUE(coordinator_->Execute({Put(a, "k1", 5), Put(b, "k2", 6)}).IsAborted());
  shard_b->UnlockKey(EntryKey(b, "k2"), 777);
  // Shard a's lock must have been rolled back.
  EXPECT_TRUE(coordinator_->Execute({Put(a, "k1", 7), Put(b, "k2", 8)}).ok());
}

TEST_F(TxnTest, AbortListenerFiresForAttrRows) {
  std::atomic<int> notifications{0};
  coordinator_->set_abort_listener([&](InodeId) { notifications.fetch_add(1); });
  WriteOp attr;
  attr.kind = WriteOp::Kind::kAddChildCount;
  attr.key = AttrKey(1);
  attr.count_delta = 1;
  Shard* shard = shards_->Route(1);
  ASSERT_TRUE(shard->TryLockKey(AttrKey(1), 999));
  EXPECT_TRUE(coordinator_->Execute({attr}).IsAborted());
  EXPECT_EQ(notifications.load(), 1);
  // Non-attr aborts do not notify.
  ASSERT_TRUE(shard->TryLockKey(EntryKey(1, "plain"), 999));
  EXPECT_TRUE(coordinator_->Execute({Put(1, "plain", 3)}).IsAborted());
  EXPECT_EQ(notifications.load(), 1);
}

TEST_F(TxnTest, ConcurrentConflictingTxnsSerialize) {
  // All threads update the same attribute row transactionally; some abort,
  // but the final count must equal the number of successes.
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        WriteOp attr;
        attr.kind = WriteOp::Kind::kAddChildCount;
        attr.key = AttrKey(42);
        attr.count_delta = 1;
        if (coordinator_->Execute({attr}).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  auto row = shards_->Route(42)->Get(AttrKey(42));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->child_count, successes.load());
  EXPECT_GT(successes.load(), 0);
}

TEST_F(TxnTest, ConcurrentDisjointTxnsAllCommit) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 50; ++i) {
        if (!coordinator_
                 ->Execute({Put(static_cast<InodeId>(t + 1),
                                "obj" + std::to_string(i), 100)})
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TxnTest, EmptyTransactionIsOk) { EXPECT_TRUE(coordinator_->Execute({}).ok()); }

TEST_F(TxnTest, TxnIdsAreUnique) {
  const uint64_t a = coordinator_->NextTxnId();
  const uint64_t b = coordinator_->NextTxnId();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mantle
