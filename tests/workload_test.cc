// Workload layer: namespace generator shape properties, the closed-loop
// driver, mdtest op generators, and the two application models.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/common/path.h"
#include "src/workload/applications.h"
#include "src/workload/mdtest_driver.h"
#include "src/workload/namespace_gen.h"
#include "tests/test_util.h"

namespace mantle {
namespace {

TEST(NamespaceGenTest, GeneratesRequestedCounts) {
  NamespaceSpec spec;
  spec.num_dirs = 500;
  spec.num_objects = 2'000;
  GeneratedNamespace ns = GenerateNamespace(spec);
  EXPECT_EQ(ns.dirs.size(), 500u);
  EXPECT_EQ(ns.objects.size(), 2'000u);
  EXPECT_EQ(ns.object_sizes.size(), 2'000u);
}

TEST(NamespaceGenTest, DepthDistributionCentersNearMean) {
  NamespaceSpec spec;
  spec.num_dirs = 3'000;
  spec.num_objects = 100;
  spec.mean_depth = 10;
  GeneratedNamespace ns = GenerateNamespace(spec);
  const double avg = ns.AverageDirDepth();
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 14.0);
  // Depths never exceed the cap.
  for (const auto& [depth, bucket] : ns.dirs_by_depth) {
    EXPECT_LE(depth, spec.max_depth);
    EXPECT_GE(depth, 1);
    EXPECT_FALSE(bucket.empty());
  }
}

TEST(NamespaceGenTest, PathsAreUniqueAndParentsPrecedeChildren) {
  NamespaceSpec spec;
  spec.num_dirs = 800;
  spec.num_objects = 800;
  GeneratedNamespace ns = GenerateNamespace(spec);
  std::set<std::string> seen{"/"};
  for (const auto& dir : ns.dirs) {
    EXPECT_TRUE(seen.insert(dir).second) << "duplicate " << dir;
    EXPECT_TRUE(seen.contains(ParentPath(dir))) << "orphan " << dir;
  }
  std::set<std::string> object_names(ns.objects.begin(), ns.objects.end());
  EXPECT_EQ(object_names.size(), ns.objects.size());
  for (const auto& object : ns.objects) {
    EXPECT_TRUE(seen.contains(ParentPath(object))) << "orphan object " << object;
  }
}

TEST(NamespaceGenTest, SmallObjectRatioHolds) {
  NamespaceSpec spec;
  spec.num_dirs = 100;
  spec.num_objects = 5'000;
  spec.small_object_ratio = 0.6;
  GeneratedNamespace ns = GenerateNamespace(spec);
  size_t small = 0;
  for (uint64_t size : ns.object_sizes) {
    if (size <= spec.small_object_max_bytes) {
      ++small;
    }
  }
  const double ratio = static_cast<double>(small) / static_cast<double>(ns.objects.size());
  EXPECT_NEAR(ratio, 0.6, 0.05);
}

TEST(NamespaceGenTest, DeterministicForSeed) {
  NamespaceSpec spec;
  spec.num_dirs = 200;
  spec.num_objects = 200;
  GeneratedNamespace a = GenerateNamespace(spec);
  GeneratedNamespace b = GenerateNamespace(spec);
  EXPECT_EQ(a.dirs, b.dirs);
  EXPECT_EQ(a.objects, b.objects);
}

TEST(NamespaceGenTest, PopulateMakesEveryPathVisible) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  NamespaceSpec spec;
  spec.num_dirs = 200;
  spec.num_objects = 600;
  GeneratedNamespace ns = PopulateNamespace(&service, spec);
  // Spot-check a sample of paths end to end.
  for (size_t i = 0; i < ns.objects.size(); i += 97) {
    EXPECT_TRUE(service.StatObject(ns.objects[i]).ok()) << ns.objects[i];
  }
  for (size_t i = 0; i < ns.dirs.size(); i += 41) {
    EXPECT_TRUE(service.StatDir(ns.dirs[i]).ok()) << ns.dirs[i];
  }
}

TEST(NamespaceGenTest, BulkLoadChainBuildsEveryLevel) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  auto levels = BulkLoadChain(&service, "lvl", 8);
  ASSERT_EQ(levels.size(), 8u);
  EXPECT_EQ(PathDepth(levels.back()), 8u);
  EXPECT_TRUE(service.StatDir(levels.back()).ok());
}

TEST(DriverTest, OpBudgetStopsThreads) {
  DriverOptions options;
  options.threads = 4;
  options.max_ops_per_thread = 25;
  std::atomic<uint64_t> issued{0};
  WorkloadResult result = RunClosedLoop(options, [&](int, uint64_t, Rng&) {
    issued.fetch_add(1);
    OpResult op;
    op.status = Status::Ok();
    op.breakdown.lookup_nanos = 1000;
    return op;
  });
  EXPECT_EQ(result.ops, 100u);
  EXPECT_EQ(issued.load(), 100u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.lookup.count(), 100u);
}

TEST(DriverTest, DurationBoundTerminates) {
  DriverOptions options;
  options.threads = 2;
  options.duration_nanos = 50'000'000;  // 50 ms
  Stopwatch timer;
  WorkloadResult result = RunClosedLoop(options, [&](int, uint64_t, Rng&) {
    PreciseSleep(500'000);
    OpResult op;
    op.status = Status::Ok();
    return op;
  });
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
  EXPECT_GT(result.ops, 0u);
  EXPECT_GT(result.Throughput(), 0.0);
}

TEST(DriverTest, ErrorsAndRetriesAggregate) {
  DriverOptions options;
  options.threads = 2;
  options.max_ops_per_thread = 10;
  WorkloadResult result = RunClosedLoop(options, [&](int, uint64_t index, Rng&) {
    OpResult op;
    op.status = (index % 2 == 0) ? Status::Ok() : Status::Aborted();
    op.retries = 3;
    op.rpcs = 2;
    return op;
  });
  EXPECT_EQ(result.errors, 10u);
  EXPECT_EQ(result.retries, 60u);
  EXPECT_DOUBLE_EQ(result.MeanRpcsPerOp(), 2.0);
}

TEST(MdtestOpsTest, GeneratorsProduceWorkingOps) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  NamespaceSpec spec;
  spec.num_dirs = 100;
  spec.num_objects = 300;
  GeneratedNamespace ns = PopulateNamespace(&service, spec);
  MdtestOps ops(&service, &ns, /*work_depth=*/6);
  Rng rng(7);

  EXPECT_TRUE(ops.ObjStat()(0, 0, rng).ok());
  EXPECT_TRUE(ops.DirStat()(0, 0, rng).ok());
  EXPECT_TRUE(ops.LookupPaths(ns.objects)(0, 0, rng).ok());

  auto create = ops.Create("/md_create", 2);
  EXPECT_TRUE(create(0, 0, rng).ok());
  EXPECT_TRUE(create(1, 0, rng).ok());
  EXPECT_TRUE(create(0, 0, rng).status.IsAlreadyExists());  // same name again

  auto create_delete = ops.CreateDelete("/md_cd", 2);
  EXPECT_TRUE(create_delete(0, 0, rng).ok());
  EXPECT_TRUE(create_delete(0, 0, rng).ok());  // pair cleans up after itself

  auto mkdir_e = ops.Mkdir("/md_mk", 2, /*shared=*/false);
  EXPECT_TRUE(mkdir_e(0, 0, rng).ok());
  auto mkdir_s = ops.Mkdir("/md_mks", 2, /*shared=*/true);
  EXPECT_TRUE(mkdir_s(0, 0, rng).ok());
  EXPECT_TRUE(mkdir_s(1, 0, rng).ok());

  auto mkdir_rmdir = ops.MkdirRmdir("/md_mr", 2, false);
  EXPECT_TRUE(mkdir_rmdir(0, 0, rng).ok());
  EXPECT_TRUE(mkdir_rmdir(0, 1, rng).ok());

  auto rename_s = ops.DirRename("/md_rn", 2, /*shared=*/true);
  EXPECT_TRUE(rename_s(0, 0, rng).ok());
  EXPECT_TRUE(rename_s(1, 0, rng).ok());
}

TEST(ApplicationsTest, AnalyticsRunsCleanAndRecordsLatencies) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  AnalyticsOptions options;
  options.queries = 2;
  options.subtasks_per_query = 8;
  options.objects_per_subtask = 1;
  options.threads = 4;
  AppResult result = RunAnalytics(&service, "/spark", options);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completion_seconds, 0.0);
  EXPECT_EQ(result.rename_latency.count(), 16u);
  EXPECT_EQ(result.mkdir_latency.count(), 16u);
  // Output committed: every part visible.
  for (int q = 0; q < 2; ++q) {
    for (int t = 0; t < 8; ++t) {
      EXPECT_TRUE(service
                      .StatDir("/spark/q" + std::to_string(q) + "/output/part_" +
                               std::to_string(t))
                      .ok());
    }
  }
}

TEST(ApplicationsTest, AudioRunsCleanAndCreatesSegments) {
  Network network(FastNetworkOptions());
  MantleService service(&network, FastMantleOptions());
  AudioOptions options;
  options.input_objects = 20;
  options.segments_per_object = 2;
  options.threads = 4;
  options.dir_depth = 6;
  AppResult result = RunAudio(&service, "/audio", options);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.objstat_latency.count(), 20u + 40u);  // scans + verifies
}

TEST(ApplicationsTest, DataAccessModelAddsCost) {
  DataAccessModel disabled;
  EXPECT_EQ(disabled.CostNanos(1 << 20), 0);
  DataAccessModel enabled;
  enabled.enabled = true;
  const int64_t small = enabled.CostNanos(4 * 1024);
  const int64_t large = enabled.CostNanos(64 * 1024 * 1024);
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace mantle
